"""Tests for the HLS C front-end: lexer, parser, lowering and affine raising."""

import numpy as np
import pytest

from repro import ir
from repro.frontend import c_ast as ast
from repro.frontend.c_lexer import LexError, tokenize
from repro.frontend.c_parser import ParseError, parse_c
from repro.frontend.c_to_mlir import FrontendError, parse_c_to_module
from repro.frontend.raise_to_affine import RaiseSCFToAffinePass
from repro.ir.interpreter import interpret_kernel
from repro.kernels import KERNEL_NAMES, kernel_source
from repro.transforms import canonicalize

from conftest import SYRK_SOURCE, compile_source, random_array, reference_syrk


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("void foo(float a) { a += 1.5f; }")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "keyword"
        assert "number" in kinds
        assert tokens[-1].kind == "eof"

    def test_comments_and_pragmas_skipped(self):
        tokens = tokenize("""
        // a comment
        #pragma HLS pipeline
        /* block
           comment */
        int x;
        """)
        texts = [t.text for t in tokens if t.kind != "eof"]
        assert texts == ["int", "x", ";"]

    def test_multi_char_operators(self):
        tokens = tokenize("a += b; c <= d;")
        operators = [t.text for t in tokens if t.kind == "operator"]
        assert "+=" in operators and "<=" in operators

    def test_line_numbers_advance(self):
        tokens = tokenize("int a;\nint b;")
        assert tokens[3].line == 2

    def test_unknown_character_rejected(self):
        with pytest.raises(LexError):
            tokenize("int a @ b;")

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")


class TestParser:
    def test_function_signature(self):
        program = parse_c("void foo(float alpha, float A[4][8]) { }")
        function = program.function("foo")
        assert function is not None
        assert function.params[0].dims == []
        assert function.params[1].dims == [4, 8]

    def test_for_loop_structure(self):
        program = parse_c("""
        void foo(float A[8]) {
          for (int i = 0; i < 8; i++) { A[i] = 0.0; }
        }""")
        loop = program.function("foo").body.statements[0]
        assert isinstance(loop, ast.ForLoop)
        assert loop.var == "i"
        assert loop.step == 1
        assert loop.compare_op == "<"

    def test_for_loop_le_and_step(self):
        program = parse_c("""
        void foo(float A[8]) {
          for (int i = 2; i <= 6; i += 2) { A[i] = 1.0; }
        }""")
        loop = program.function("foo").body.statements[0]
        assert loop.compare_op == "<="
        assert loop.step == 2

    def test_compound_assignment(self):
        program = parse_c("void foo(float A[4]) { A[1] += 2.0; }")
        statement = program.function("foo").body.statements[0]
        assert isinstance(statement, ast.Assignment)
        assert statement.op == "+="

    def test_if_else(self):
        program = parse_c("""
        void foo(float A[4]) {
          for (int i = 0; i < 4; i++) {
            if (i >= 2) { A[i] = 1.0; } else { A[i] = 2.0; }
          }
        }""")
        loop = program.function("foo").body.statements[0]
        conditional = loop.body.statements[0]
        assert isinstance(conditional, ast.IfStmt)
        assert conditional.else_body is not None

    def test_ternary_expression(self):
        program = parse_c("void foo(float A[4]) { A[0] = (1 > 0) ? 1.0 : 2.0; }")
        statement = program.function("foo").body.statements[0]
        assert isinstance(statement.value, ast.TernaryExpr)

    def test_operator_precedence(self):
        program = parse_c("void foo(float A[4]) { A[0] = 1.0 + 2.0 * 3.0; }")
        value = program.function("foo").body.statements[0].value
        assert value.op == "+"
        assert value.rhs.op == "*"

    def test_declaration_with_dims(self):
        program = parse_c("void foo() { float tmp[16]; int n = 4; }")
        body = program.function("foo").body.statements
        assert body[0].dims == [16]
        assert body[1].init is not None

    def test_unsupported_while_rejected(self):
        with pytest.raises(ParseError):
            parse_c("void foo() { while (1) { } }")

    def test_bad_loop_condition_rejected(self):
        with pytest.raises(ParseError):
            parse_c("void foo(float A[4]) { for (int i = 0; j < 4; i++) { } }")

    def test_all_polybench_kernels_parse(self):
        for name in KERNEL_NAMES:
            program = parse_c(kernel_source(name, 8))
            assert program.function(name) is not None


class TestCToMLIR:
    def test_module_structure(self):
        module = parse_c_to_module(SYRK_SOURCE, "syrk")
        ir.verify(module)
        func_op = module.lookup("syrk")
        assert func_op is not None
        assert func_op.get_attr("arg_names") == ["alpha", "beta", "C", "A"]
        assert [op.name for op in func_op.walk()].count("scf.for") == 3

    def test_scalar_local_becomes_buffer(self):
        module = parse_c_to_module("""
        void foo(float A[4]) {
          float acc = 0.0;
          for (int i = 0; i < 4; i++) { acc += A[i]; }
          A[0] = acc;
        }""")
        ir.verify(module)
        allocs = [op for op in module.walk() if op.name == "memref.alloc"]
        assert len(allocs) == 1
        assert allocs[0].result().type.shape == (1,)

    def test_non_void_function_rejected(self):
        with pytest.raises(FrontendError):
            parse_c_to_module("float foo() { return 1.0; }")

    def test_assign_to_parameter_scalar_rejected(self):
        with pytest.raises(FrontendError):
            parse_c_to_module("void foo(float a) { a = 1.0; }")

    def test_unknown_identifier_rejected(self):
        with pytest.raises(FrontendError):
            parse_c_to_module("void foo(float A[4]) { A[0] = missing; }")


class TestRaiseToAffine:
    def test_constant_loops_become_affine(self, gemm_module):
        ops = [op.name for op in gemm_module.walk()]
        assert "affine.for" in ops
        assert "scf.for" not in ops
        assert "memref.load" not in ops
        assert "affine.load" in ops

    def test_variable_bound_raised_with_operand(self, syrk_module):
        loops = [op for op in syrk_module.walk() if op.name == "affine.for"]
        variable = [loop for loop in loops if not loop.has_constant_upper_bound()]
        assert len(variable) == 1
        assert len(variable[0].ub_operands) == 1

    def test_if_condition_becomes_integer_set(self):
        module = compile_source("""
        void foo(float A[8][8]) {
          for (int i = 0; i < 8; i++) {
            for (int j = 0; j < 8; j++) {
              if (i >= j) { A[i][j] = 1.0; }
            }
          }
        }""")
        ifs = [op for op in module.walk() if op.name == "affine.if"]
        assert len(ifs) == 1
        condition = ifs[0].condition
        assert condition.contains([3, 2])
        assert not condition.contains([2, 3])

    def test_semantics_preserved_by_raising(self):
        """The raised SYRK computes exactly the same result as the reference."""
        module = compile_source(SYRK_SOURCE, "syrk")
        C = random_array((16, 16), seed=1)
        A = random_array((16, 8), seed=2)
        expected = reference_syrk(1.5, 0.5, C, A)
        interpret_kernel(module, "syrk", {"C": C, "A": A},
                         {"alpha": 1.5, "beta": 0.5})
        np.testing.assert_allclose(C, expected, rtol=1e-5)

    def test_gemm_semantics(self, gemm_module):
        from conftest import reference_gemm

        C = random_array((8, 8), seed=3)
        A = random_array((8, 8), seed=4)
        B = random_array((8, 8), seed=5)
        expected = reference_gemm(2.0, 0.5, C, A, B)
        interpret_kernel(gemm_module, "gemm", {"C": C, "A": A, "B": B},
                         {"alpha": 2.0, "beta": 0.5})
        np.testing.assert_allclose(C, expected, rtol=1e-4)

    def test_all_kernels_compile_and_verify(self):
        for name in KERNEL_NAMES:
            module = compile_source(kernel_source(name, 8), name)
            ir.verify(module)
            assert any(op.name == "affine.for" for op in module.walk())

"""Shared fixtures for the test suite.

The kernel sources and reference implementations live in
:mod:`repro.testing`; they are re-exported here because test modules do
``from conftest import ...`` and must keep working no matter which
``conftest.py`` (this one or the benchmark harness's) pytest placed first
on ``sys.path``.
"""

from __future__ import annotations

import pytest

from repro.testing import (  # noqa: F401  (re-exported for test modules)
    GEMM_SOURCE,
    SYRK_SOURCE,
    compile_source,
    random_array,
    reference_gemm,
    reference_syrk,
)


@pytest.fixture
def syrk_module():
    return compile_source(SYRK_SOURCE, "syrk")


@pytest.fixture
def gemm_module():
    return compile_source(GEMM_SOURCE, "gemm")

"""Tests for affine analysis helpers and the memory dependence model."""

import pytest
from hypothesis import given, strategies as st

from repro.affine import (
    MemoryAccess,
    constant,
    dependence_distance,
    dim,
    expr_min_max,
)
from repro.affine.analysis import expr_constant_term, expr_dim_coefficients, linearize
from repro.affine.dependence import (
    FREE,
    accesses_conflict,
    all_dependences,
    loops_carrying_dependence,
    minimum_carried_distance,
)


class TestLinearize:
    def test_constant(self):
        assert linearize(constant(5), 2) == ([0, 0], 5)

    def test_dim(self):
        assert linearize(dim(1), 3) == ([0, 1, 0], 0)

    def test_linear_combination(self):
        coeffs, const = linearize(dim(0) * 4 + dim(1) - 3, 2)
        assert coeffs == [4, 1]
        assert const == -3

    def test_mod_is_not_linear(self):
        assert linearize(dim(0) % 4, 1) is None

    def test_dim_product_is_not_linear(self):
        from repro.affine.expr import AffineBinaryExpr, AffineExprKind

        product = AffineBinaryExpr(AffineExprKind.MUL, dim(0), dim(1))
        assert linearize(product, 2) is None

    def test_out_of_range_dim(self):
        assert linearize(dim(5), 2) is None

    def test_coefficients_helper(self):
        assert expr_dim_coefficients(dim(0) * 2 + dim(1), 2) == [2, 1]

    def test_constant_term_helper(self):
        assert expr_constant_term(dim(0) + 7, 1) == 7


class TestMinMax:
    def test_linear_bounds(self):
        low, high = expr_min_max(dim(0) * 2 + 1, [(0, 10)])
        assert (low, high) == (1, 19)

    def test_negative_coefficient(self):
        low, high = expr_min_max(constant(10) - dim(0), [(0, 4)])
        assert (low, high) == (7, 10)

    def test_multi_dim(self):
        low, high = expr_min_max(dim(0) + dim(1), [(0, 4), (2, 6)])
        assert (low, high) == (2, 8)

    def test_nonlinear_enumeration(self):
        low, high = expr_min_max(dim(0) % 4, [(0, 10)])
        assert (low, high) == (0, 3)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            expr_min_max(dim(0), [(3, 3)])

    @given(st.integers(0, 30), st.integers(1, 30))
    def test_value_within_bounds(self, low_bound, extent):
        expr = dim(0) * 3 - 5
        low, high = expr_min_max(expr, [(low_bound, low_bound + extent)])
        for value in range(low_bound, low_bound + extent):
            assert low <= expr.evaluate([value]) <= high


def make_access(memref, indices, is_write):
    return MemoryAccess(memref=memref, indices=tuple(indices), is_write=is_write)


class TestDependence:
    def test_different_buffers_never_conflict(self):
        a = make_access("A", [dim(0)], True)
        b = make_access("B", [dim(0)], False)
        assert dependence_distance(a, b, 1) is None

    def test_read_read_has_no_dependence(self):
        a = make_access("A", [dim(0)], False)
        b = make_access("A", [dim(0)], False)
        assert dependence_distance(a, b, 1) is None

    def test_same_address_reduction(self):
        """C[i][j] loaded and stored: dependence carried by a loop not indexing C."""
        store = make_access("C", [dim(0), dim(1)], True)
        load = make_access("C", [dim(0), dim(1)], False)
        dep = dependence_distance(store, load, 3)
        assert dep is not None
        assert dep.distances[0] == 0
        assert dep.distances[1] == 0
        assert dep.distances[2] == FREE
        assert dep.carried_by(2)
        assert not dep.carried_by(0)

    def test_constant_offset_distance(self):
        """A[i+1] written, A[i] read: distance one along the i loop."""
        store = make_access("A", [dim(0) + 1], True)
        load = make_access("A", [dim(0)], False)
        dep = dependence_distance(store, load, 1)
        assert dep is not None
        assert dep.distances[0] == 1

    def test_incompatible_constant_offsets(self):
        """Accesses to different constant addresses never conflict."""
        store = make_access("A", [constant(0)], True)
        load = make_access("A", [constant(5)], False)
        assert dependence_distance(store, load, 1) is None

    def test_non_divisible_offset_means_no_dependence(self):
        store = make_access("A", [dim(0) * 2 + 1], True)
        load = make_access("A", [dim(0) * 2], False)
        assert dependence_distance(store, load, 1) is None

    def test_nonlinear_index_is_conservative(self):
        store = make_access("A", [dim(0) % 4], True)
        load = make_access("A", [dim(0)], False)
        dep = dependence_distance(store, load, 1)
        assert dep is not None
        assert dep.distances[0] == FREE

    def test_conflict_helper(self):
        store = make_access("A", [dim(0)], True)
        load = make_access("A", [dim(0)], False)
        assert accesses_conflict(store, load, 1)
        assert not accesses_conflict(load, load, 1)


class TestCarriedLoops:
    def test_gemm_reduction_pattern(self):
        """C[i][j] accumulation: only the k loop (dim 2) carries a dependence."""
        accesses = [
            make_access("C", [dim(0), dim(1)], False),
            make_access("C", [dim(0), dim(1)], True),
            make_access("A", [dim(0), dim(2)], False),
            make_access("B", [dim(2), dim(1)], False),
        ]
        assert loops_carrying_dependence(accesses, 3) == {2}

    def test_bicg_pattern_both_loops_carry(self):
        """s[j] and q[i] updates: both the i and j loops carry a dependence."""
        accesses = [
            make_access("s", [dim(1)], True),
            make_access("s", [dim(1)], False),
            make_access("q", [dim(0)], True),
            make_access("q", [dim(0)], False),
        ]
        assert loops_carrying_dependence(accesses, 2) == {0, 1}

    def test_elementwise_carries_nothing(self):
        accesses = [
            make_access("out", [dim(0)], True),
            make_access("in", [dim(0)], False),
        ]
        assert loops_carrying_dependence(accesses, 1) == set()

    def test_minimum_carried_distance(self):
        accesses = [
            make_access("A", [dim(0) + 2], True),
            make_access("A", [dim(0)], False),
        ]
        assert minimum_carried_distance(accesses, 1, 0) == 2

    def test_minimum_distance_none_when_not_carried(self):
        accesses = [
            make_access("A", [dim(0)], True),
            make_access("A", [dim(0)], False),
        ]
        assert minimum_carried_distance(accesses, 1, 0) is None

    def test_all_dependences_counts_write_pairs(self):
        accesses = [
            make_access("A", [dim(0)], True),
            make_access("A", [dim(0)], False),
            make_access("A", [dim(0)], False),
        ]
        deps = all_dependences(accesses, 1)
        assert len(deps) >= 2


@given(st.integers(-8, 8))
def test_offset_distance_matches_shift(offset):
    """Write A[i + offset], read A[i]: the dependence distance equals |offset|."""
    store = make_access("A", [dim(0) + offset], True)
    load = make_access("A", [dim(0)], False)
    dep = dependence_distance(store, load, 1)
    assert dep is not None
    assert dep.distances[0] == offset
    assert dep.distance_along(0) == abs(offset) if offset != 0 else True

"""Tests for the reference interpreter, the PolyBench kernel generators and
the end-to-end semantic equivalence of optimized kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ir
from repro.dialects import arith, func, memref
from repro.dialects.affine_ops import AffineForOp, AffineLoadOp, AffineStoreOp
from repro.dse import apply_design_point
from repro.dse.space import KernelDesignPoint
from repro.estimation import XC7Z020
from repro.ir import Builder, InsertionPoint, MemRefType, ModuleOp, f32, index
from repro.ir.interpreter import Interpreter, InterpreterError, interpret_kernel
from repro.kernels import KERNEL_NAMES, kernel_source
from repro.pipeline import compile_kernel

from conftest import compile_source, random_array


class TestInterpreterBasics:
    def build_accumulate(self):
        """out[0] = sum of A[0..7]"""
        module = ModuleOp("m")
        f = func.build_function(module, "accumulate",
                                [MemRefType((8,), f32), MemRefType((1,), f32)])
        builder = Builder(InsertionPoint.at_end(f.body))
        loop = builder.insert(AffineForOp.constant_bounds(0, 8))
        body = Builder(InsertionPoint.at_end(loop.body))
        zero = body.insert(arith.ConstantOp(0, index))
        value = body.insert(AffineLoadOp(f.arguments[0], [loop.induction_variable]))
        accumulator = body.insert(AffineLoadOp(f.arguments[1], [zero.result()]))
        total = body.insert(arith.AddFOp(accumulator.result(), value.result()))
        body.insert(AffineStoreOp(total.result(), f.arguments[1], [zero.result()]))
        builder.insert(func.ReturnOp())
        return module, f

    def test_loop_accumulation(self):
        module, f = self.build_accumulate()
        A = np.arange(8, dtype=np.float32)
        out = np.zeros(1, dtype=np.float32)
        Interpreter(module).run_function(f, [A, out])
        assert out[0] == pytest.approx(A.sum())

    def test_argument_count_checked(self):
        module, f = self.build_accumulate()
        with pytest.raises(InterpreterError):
            Interpreter(module).run_function(f, [np.zeros(8, dtype=np.float32)])

    def test_call_requires_module(self):
        module = ModuleOp("m")
        f = func.build_function(module, "caller", [])
        builder = Builder(InsertionPoint.at_end(f.body))
        builder.insert(func.CallOp("missing", [], []))
        builder.insert(func.ReturnOp())
        with pytest.raises(InterpreterError):
            Interpreter(None).run_function(f, [])

    def test_alloc_creates_zero_buffer(self):
        module = ModuleOp("m")
        f = func.build_function(module, "f", [MemRefType((1,), f32)])
        builder = Builder(InsertionPoint.at_end(f.body))
        buffer = builder.insert(memref.AllocOp(MemRefType((4,), f32)))
        zero = builder.insert(arith.ConstantOp(0, index))
        value = builder.insert(AffineLoadOp(buffer.result(), [zero.result()]))
        builder.insert(AffineStoreOp(value.result(), f.arguments[0], [zero.result()]))
        builder.insert(func.ReturnOp())
        out = np.ones(1, dtype=np.float32)
        Interpreter(module).run_function(f, [out])
        assert out[0] == 0.0

    def test_cross_function_call(self):
        """A call in the top function executes the callee on the same buffers."""
        module = compile_source("""
        void double_all(float A[4]) {
          for (int i = 0; i < 4; i++) { A[i] *= 2.0; }
        }""", "m")
        callee = module.functions()[0]
        top = func.build_function(module, "top", [MemRefType((4,), f32)])
        builder = Builder(InsertionPoint.at_end(top.body))
        builder.insert(func.CallOp("double_all", [top.arguments[0]], []))
        builder.insert(func.ReturnOp())
        A = np.ones(4, dtype=np.float32)
        Interpreter(module).run(top.get_attr("sym_name"), [A])
        np.testing.assert_allclose(A, 2.0)

    def test_unknown_op_rejected(self):
        module = ModuleOp("m")
        f = func.build_function(module, "f", [])
        f.body.append(ir.Operation("mystery.op"))
        f.body.append(func.ReturnOp())
        with pytest.raises(InterpreterError):
            Interpreter(module).run_function(f, [])


class TestKernelGenerators:
    def test_all_kernels_have_sources(self):
        for name in KERNEL_NAMES:
            source = kernel_source(name, 16)
            assert f"void {name}(" in source

    def test_problem_size_embedded(self):
        source = kernel_source("gemm", 64)
        assert "[64][64]" in source
        assert "i < 64" in source

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            kernel_source("fft", 64)

    def test_tiny_problem_size_rejected(self):
        with pytest.raises(ValueError):
            kernel_source("gemm", 1)

    def test_compiled_kernels_have_expected_loop_depth(self):
        expected_depth = {"bicg": 2, "gemm": 3, "gesummv": 2, "syr2k": 3,
                          "syrk": 3, "trmm": 3}
        for name, depth in expected_depth.items():
            module = compile_kernel(name, 8)
            loops = [op for op in module.walk() if isinstance(op, AffineForOp)]
            assert len(loops) == depth, name


def numpy_reference(name, size, arrays, alpha=1.5, beta=0.5):
    """NumPy references for the PolyBench kernels (used for equivalence tests)."""
    if name == "gemm":
        return {"C": beta * arrays["C"] + alpha * arrays["A"] @ arrays["B"]}
    if name == "bicg":
        return {"s": arrays["s"] + arrays["r"] @ arrays["A"],
                "q": arrays["q"] + arrays["A"] @ arrays["p"]}
    if name == "gesummv":
        tmp = arrays["tmp"] + arrays["A"] @ arrays["x"]
        y = arrays["y"] + arrays["B"] @ arrays["x"]
        return {"y": alpha * tmp + beta * y, "tmp": tmp}
    if name == "syrk":
        C = arrays["C"].copy()
        A = arrays["A"]
        for i in range(size):
            for j in range(i + 1):
                C[i, j] = beta * C[i, j] + alpha * (A[i] * A[j]).sum()
        return {"C": C}
    if name == "syr2k":
        C = arrays["C"].copy()
        A, B = arrays["A"], arrays["B"]
        for i in range(size):
            for j in range(i + 1):
                C[i, j] = beta * C[i, j] + alpha * (A[j] * B[i]).sum() \
                    + alpha * (B[j] * A[i]).sum()
        return {"C": C}
    if name == "trmm":
        B = arrays["B"].copy()
        A = arrays["A"]
        result = B.copy()
        for i in range(size):
            for j in range(size):
                value = B[i, j] + (A[i + 1:, i] * B[i + 1:, j]).sum()
                result[i, j] = alpha * value
        return {"B": result}
    raise ValueError(name)


def kernel_arrays(name, size, seed=0):
    if name == "gemm":
        return {"C": random_array((size, size), seed), "A": random_array((size, size), seed + 1),
                "B": random_array((size, size), seed + 2)}
    if name == "bicg":
        return {"A": random_array((size, size), seed), "s": random_array((size,), seed + 1),
                "q": random_array((size,), seed + 2), "p": random_array((size,), seed + 3),
                "r": random_array((size,), seed + 4)}
    if name == "gesummv":
        return {"A": random_array((size, size), seed), "B": random_array((size, size), seed + 1),
                "tmp": random_array((size,), seed + 2), "x": random_array((size,), seed + 3),
                "y": random_array((size,), seed + 4)}
    if name == "syrk":
        return {"C": random_array((size, size), seed),
                "A": random_array((size, max(2, size // 2)), seed + 1)}
    if name == "syr2k":
        return {"C": random_array((size, size), seed),
                "A": random_array((size, max(2, size // 2)), seed + 1),
                "B": random_array((size, max(2, size // 2)), seed + 2)}
    if name == "trmm":
        return {"A": random_array((size, size), seed), "B": random_array((size, size), seed + 1)}
    raise ValueError(name)


class TestKernelSemantics:
    """The compiled kernels compute exactly what the NumPy references compute."""

    SIZE = 8

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_front_end_matches_reference(self, name):
        module = compile_kernel(name, self.SIZE)
        arrays = kernel_arrays(name, self.SIZE, seed=3)
        expected = numpy_reference(name, self.SIZE, {k: v.copy() for k, v in arrays.items()})
        interpret_kernel(module, name, arrays, {"alpha": 1.5, "beta": 0.5})
        for key, reference_value in expected.items():
            np.testing.assert_allclose(arrays[key], reference_value, rtol=1e-4,
                                       err_msg=f"{name}: array {key}")

    @pytest.mark.parametrize("name", ["gemm", "syrk", "bicg"])
    def test_optimized_design_matches_reference(self, name):
        module = compile_kernel(name, self.SIZE)
        band_size = {"gemm": 3, "syrk": 3, "bicg": 2}[name]
        point = KernelDesignPoint(
            loop_perfectization=True, remove_variable_bound=True,
            perm_map=tuple(range(band_size)),
            tile_sizes=tuple([2] + [1] * (band_size - 1)), target_ii=1)
        design = apply_design_point(module, point, XC7Z020)
        arrays = kernel_arrays(name, self.SIZE, seed=5)
        expected = numpy_reference(name, self.SIZE, {k: v.copy() for k, v in arrays.items()})
        interpret_kernel(design.module, name, arrays, {"alpha": 1.5, "beta": 0.5})
        for key, reference_value in expected.items():
            np.testing.assert_allclose(arrays[key], reference_value, rtol=1e-4,
                                       err_msg=f"{name}: array {key}")

    @settings(max_examples=6, deadline=None)
    @given(alpha=st.floats(-2, 2, allow_nan=False), beta=st.floats(-2, 2, allow_nan=False))
    def test_gemm_equivalence_for_random_scalars(self, alpha, beta):
        module = compile_kernel("gemm", 4)
        arrays = kernel_arrays("gemm", 4, seed=9)
        expected = beta * arrays["C"] + alpha * arrays["A"] @ arrays["B"]
        interpret_kernel(module, "gemm", arrays, {"alpha": alpha, "beta": beta})
        np.testing.assert_allclose(arrays["C"], expected, rtol=1e-3, atol=1e-5)

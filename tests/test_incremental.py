"""Tests for incremental evaluation: prefix-snapshot caching correctness
(byte-identical results with the cache on or off, at any worker count),
snapshot invalidation and clone isolation, runtime pipeline registration,
and the estimate cache's byte bound + JSONL compaction."""

import json
import os

import pytest

from repro.dse.apply import (
    CLEANUP_PIPELINES,
    apply_design_point,
    install_cleanup_pipelines,
    kernel_pipeline_signature,
    register_cleanup_pipeline,
)
from repro.dse.incremental import PrefixSnapshotCache
from repro.dse.runtime import EstimateCache, ParallelExplorer
from repro.dse.space import KernelDesignPoint, ir_digest
from repro.estimation import XC7Z020
from repro.ir import print_op
from repro.ir.pass_manager import PassError

from conftest import GEMM_SOURCE, compile_source


@pytest.fixture
def gemm_module():
    return compile_source(GEMM_SOURCE, "gemm")


POINT = KernelDesignPoint(loop_perfectization=True, remove_variable_bound=True,
                          perm_map=(1, 2, 0), tile_sizes=(4, 4, 4), target_ii=1)


def result_bytes(result):
    """Canonical byte rendering of a sweep outcome (frontier + records)."""
    payload = {
        "fingerprint": result.fingerprint,
        "frontier": [record.to_json_dict()
                     for record in result.frontier_records()],
        "records": [result.records[encoded].to_json_dict()
                    for encoded in sorted(result.records)],
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class TestIncrementalEquivalence:
    def test_apply_design_point_matches_snapshot_path(self, gemm_module):
        snapshots = PrefixSnapshotCache()
        plain = apply_design_point(gemm_module, POINT, XC7Z020)
        for _ in range(2):  # second round hits the snapshot
            cached = apply_design_point(gemm_module, POINT, XC7Z020,
                                        snapshots=snapshots)
            assert print_op(cached.module, stable_ids=True) \
                == print_op(plain.module, stable_ids=True)
            assert cached.qor == plain.qor
        assert snapshots.hits == 1 and snapshots.misses == 1
        assert snapshots.clones == 2

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_frontier_bytes_identical_with_and_without_cache(self, gemm_module,
                                                             jobs):
        outcomes = []
        for incremental in (True, False):
            explorer = ParallelExplorer(platform=XC7Z020, num_samples=6,
                                        max_iterations=8, seed=11, jobs=jobs,
                                        batch_size=4, incremental=incremental)
            outcomes.append(result_bytes(explorer.explore(gemm_module)))
        assert outcomes[0] == outcomes[1]


class TestPrefixSnapshotCache:
    def test_checkout_hits_per_prefix_key(self, gemm_module):
        cache = PrefixSnapshotCache()
        other = KernelDesignPoint(loop_perfectization=False,
                                  remove_variable_bound=True,
                                  perm_map=(0, 1, 2), tile_sizes=(1, 1, 1),
                                  target_ii=1)
        cache.checkout(gemm_module, POINT)
        cache.checkout(gemm_module, POINT)  # same prefix key -> hit
        cache.checkout(gemm_module, other)  # lp0-rvb1 -> separate snapshot
        assert (cache.hits, cache.misses, cache.clones) == (1, 2, 3)
        assert len(cache) == 2

    def test_clone_isolation(self, gemm_module):
        cache = PrefixSnapshotCache()
        first, func_op = cache.checkout(gemm_module, POINT)
        reference = print_op(first, stable_ids=True)
        # Vandalize the checked-out clone; the cached snapshot must not see it.
        func_op.set_attr("vandalized", True)
        func_op.regions[0].blocks[0].operations[0].erase()
        second, _ = cache.checkout(gemm_module, POINT)
        assert cache.hits == 1
        assert print_op(second, stable_ids=True) == reference

    def test_in_place_mutation_invalidates(self, gemm_module):
        cache = PrefixSnapshotCache()
        cache.checkout(gemm_module, POINT)
        func_op = gemm_module.functions()[0]
        before = ir_digest(func_op)
        func_op.set_attr("revision", 2)
        assert ir_digest(func_op) != before
        cache.checkout(gemm_module, POINT)  # recomputed digest -> miss
        assert (cache.hits, cache.misses) == (0, 2)

    def test_digest_hint_skips_recompute(self, gemm_module):
        cache = PrefixSnapshotCache()
        digest = ir_digest(gemm_module.functions()[0])
        cache.checkout(gemm_module, POINT, digest=digest)
        cache.checkout(gemm_module, POINT, digest=digest)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_bound(self, gemm_module):
        cache = PrefixSnapshotCache(max_entries=1)
        other = KernelDesignPoint(loop_perfectization=False,
                                  remove_variable_bound=False,
                                  perm_map=(0, 1, 2), tile_sizes=(1, 1, 1),
                                  target_ii=1)
        cache.checkout(gemm_module, POINT)
        cache.checkout(gemm_module, other)
        assert len(cache) == 1 and cache.evictions == 1
        cache.checkout(gemm_module, POINT)  # evicted -> rebuilt
        assert cache.misses == 3


class TestRuntimePipelineRegistration:
    def teardown_method(self):
        # Registration mutates global state; restore the built-in registry.
        install_cleanup_pipelines({
            name: spec for name, spec in CLEANUP_PIPELINES.items()
            if not name.startswith("test-")})

    def test_register_changes_signature(self):
        before = kernel_pipeline_signature()
        register_cleanup_pipeline("test-lean", "cse,canonicalize")
        after = kernel_pipeline_signature()
        assert before != after
        assert "test-lean=cse,canonicalize" in after

    def test_register_validates_spec_and_name(self):
        with pytest.raises(PassError):
            register_cleanup_pipeline("test-bogus", "no-such-pass")
        with pytest.raises(PassError):
            register_cleanup_pipeline("bad name", "canonicalize")
        with pytest.raises(PassError):
            register_cleanup_pipeline("", "canonicalize")
        assert "test-bogus" not in CLEANUP_PIPELINES

    def test_registered_pipeline_usable_by_a_point(self, gemm_module):
        register_cleanup_pipeline("test-lean", "cse,canonicalize")
        point = KernelDesignPoint(loop_perfectization=True,
                                  remove_variable_bound=True,
                                  perm_map=(0, 1, 2), tile_sizes=(2, 2, 2),
                                  target_ii=1, pipeline="test-lean")
        design = apply_design_point(gemm_module, point, XC7Z020)
        assert design.qor.latency > 0


class TestEstimateCacheByteBound:
    def _fill(self, path, **bounds):
        explorer = ParallelExplorer(platform=XC7Z020, num_samples=6,
                                    max_iterations=8, seed=11, jobs=1,
                                    batch_size=4,
                                    cache=EstimateCache(path, **bounds))
        return explorer.explore(compile_source(GEMM_SOURCE, "gemm"))

    def test_max_bytes_bounds_entries_and_file(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cold = self._fill(path)
        full_size = os.path.getsize(path)
        assert full_size > 512

        bounded = EstimateCache(path, max_bytes=512)
        assert 0 < len(bounded) < cold.num_evaluations
        assert bounded.stats.compacted > 0  # byte-evicted lines dropped
        assert os.path.getsize(path) <= 512

    def test_byte_bound_keeps_newest_entry(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        self._fill(path, max_bytes=64)  # smaller than any single line
        cache = EstimateCache(path, max_bytes=64)
        assert len(cache) == 1  # the newest entry always survives

    def test_compaction_drops_superseded_and_corrupt_lines(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        self._fill(path)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        # Duplicate the first line at the tail (superseded) + corrupt noise.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(lines[0] + "\n")
            handle.write("not json at all\n")
        revived = EstimateCache(path)
        assert revived.stats.compacted == 2
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read().splitlines() == lines

    def test_clean_file_not_rewritten(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        self._fill(path)
        stamp = os.stat(path).st_mtime_ns
        revived = EstimateCache(path)
        assert revived.stats.compacted == 0
        assert os.stat(path).st_mtime_ns == stamp

    def test_entry_count_eviction_alone_keeps_file_appendable(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cold = self._fill(path)
        small = EstimateCache(path, max_entries=2)
        assert len(small) == 2 and small.stats.compacted == 0
        # The file still holds everything: a larger-bounded process re-warms.
        assert EstimateCache(path).stats.loaded == cold.num_evaluations

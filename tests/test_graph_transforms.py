"""Tests for the graph-level transforms and the graph-to-loop lowering."""

import pytest

from repro import ir
from repro.dialects import graph
from repro.dialects.hlscpp import get_dataflow_stage, get_func_directive
from repro.frontend.models import mobilenet, resnet18, vgg16
from repro.frontend.pytorch_like import GraphBuilder, model_flops, model_parameters
from repro.ir.pass_manager import PassError
from repro.transforms import legalize_dataflow, lower_graph_to_loops, split_function


def build_bypass_model():
    """The paper's Fig. 4 shape: Proc0 -> {Proc1 -> Proc2 -> Proc3, Proc3} -> Proc4."""
    builder = GraphBuilder("bypass", (1, 8, 8, 8))
    p0 = builder.relu(builder.input, name="proc0")
    p1 = builder.conv2d(p0, 8, 3, padding=1, name="proc1")
    p2 = builder.relu(p1, name="proc2")
    p3 = builder.add(p2, p0, name="proc3")  # bypass edge proc0 -> proc3
    p4 = builder.relu(p3, name="proc4")
    return builder.finish(p4), builder.func_op


def build_chain_model(length=4):
    builder = GraphBuilder("chain", (1, 4, 8, 8))
    x = builder.input
    for i in range(length):
        x = builder.relu(x, name=f"stage{i}")
    return builder.finish(x), builder.func_op


class TestModels:
    def test_resnet18_structure(self):
        module = resnet18()
        ir.verify(module)
        convs = [op for op in module.walk() if op.name == "graph.conv2d"]
        assert len(convs) == 20  # 17 main convs + 3 downsample projections
        assert module.functions()[0].get_attr("function_type").results[0].shape == (1, 10)

    def test_vgg16_structure(self):
        module = vgg16()
        convs = [op for op in module.walk() if op.name == "graph.conv2d"]
        dense = [op for op in module.walk() if op.name == "graph.dense"]
        assert len(convs) == 13
        assert len(dense) == 3

    def test_mobilenet_uses_depthwise(self):
        module = mobilenet()
        depthwise = [op for op in module.walk()
                     if op.name == "graph.conv2d" and op.get_attr("groups") > 1]
        assert len(depthwise) == 13

    def test_flop_ordering(self):
        """ResNet-18 > VGG-16 (CIFAR) > MobileNet in multiply-accumulate work."""
        flops = {name: model_flops(fn()) for name, fn in
                 (("resnet18", resnet18), ("vgg16", vgg16), ("mobilenet", mobilenet))}
        assert flops["resnet18"] > flops["vgg16"] > flops["mobilenet"]

    def test_parameter_counts_in_expected_range(self):
        assert 10e6 < model_parameters(resnet18()) < 13e6
        assert 1e6 < model_parameters(mobilenet()) < 5e6

    def test_unknown_model_rejected(self):
        from repro.frontend.models import build_model

        with pytest.raises(ValueError):
            build_model("alexnet")


class TestLegalizeDataflow:
    def test_conservative_merges_bypassed_stages(self):
        module, func_op = build_bypass_model()
        stages = legalize_dataflow(func_op, insert_copy=False)
        assert stages == 3  # proc0 | proc1-3 | proc4, as in Fig. 4(b)
        by_name = {op.get_attr("layer_name"): get_dataflow_stage(op)
                   for op in graph.graph_nodes(func_op)}
        assert by_name["proc0"] == 0
        assert by_name["proc1"] == by_name["proc2"] == by_name["proc3"] == 1
        assert by_name["proc4"] == 2

    def test_aggressive_inserts_copies(self):
        module, func_op = build_bypass_model()
        stages = legalize_dataflow(func_op, insert_copy=True)
        copies = [op for op in graph.graph_nodes(func_op) if op.name == "graph.copy"]
        assert len(copies) == 2  # Fig. 4(c): two copy nodes on the bypass path
        assert stages == 5

    def test_every_edge_adjacent_after_legalization(self):
        module, func_op = build_bypass_model()
        legalize_dataflow(func_op, insert_copy=True)
        nodes = graph.graph_nodes(func_op)
        node_set = set(nodes)
        for node in nodes:
            for result in node.results:
                for user in result.users:
                    if user in node_set:
                        assert get_dataflow_stage(user) - get_dataflow_stage(node) == 1

    def test_linear_chain_one_stage_per_node(self):
        module, func_op = build_chain_model(5)
        assert legalize_dataflow(func_op) == 5

    def test_function_marked_dataflow(self):
        module, func_op = build_chain_model()
        legalize_dataflow(func_op)
        assert get_func_directive(func_op).dataflow

    def test_function_without_graph_nodes_rejected(self):
        from repro.dialects import func as func_dialect
        from repro.ir import FunctionType, ModuleOp

        module = ModuleOp("m")
        empty = func_dialect.build_function(module, "empty", [])
        with pytest.raises(PassError):
            legalize_dataflow(empty)

    def test_resnet_legalizes(self):
        module = resnet18()
        stages = legalize_dataflow(module.functions()[0])
        assert stages > 5


class TestSplitFunction:
    def test_one_function_per_stage(self):
        module, func_op = build_chain_model(4)
        legalize_dataflow(func_op)
        sub_functions = split_function(module, func_op, min_granularity=1)
        assert len(sub_functions) == 4
        ir.verify(module)
        calls = [op for op in func_op.walk() if op.name == "func.call"]
        assert len(calls) == 4
        assert not graph.graph_nodes(func_op)

    def test_granularity_merges_adjacent_stages(self):
        module, func_op = build_chain_model(4)
        legalize_dataflow(func_op)
        sub_functions = split_function(module, func_op, min_granularity=2)
        assert len(sub_functions) == 2

    def test_split_requires_legalization(self):
        module, func_op = build_chain_model(3)
        with pytest.raises(PassError):
            split_function(module, func_op)

    def test_call_graph_is_wired_correctly(self):
        module, func_op = build_bypass_model()
        legalize_dataflow(func_op)
        split_function(module, func_op, min_granularity=1)
        ir.verify(module)
        # The top function's return must consume the last call's result.
        return_op = func_op.region(0).front.operations[-1]
        assert return_op.name == "func.return"
        producer = return_op.operand(0).owner
        assert producer.name == "func.call"

    def test_sub_function_signatures_are_tensor_typed(self):
        module, func_op = build_chain_model(3)
        legalize_dataflow(func_op)
        sub_functions = split_function(module, func_op)
        for sub in sub_functions:
            assert all(t.__class__.__name__ == "TensorType"
                       for t in sub.get_attr("function_type").inputs)


class TestLowerGraph:
    def test_lowering_removes_graph_ops(self):
        module, func_op = build_chain_model(3)
        lowered = lower_graph_to_loops(module)
        assert lowered == 3
        assert not any(op.name.startswith("graph.") for op in module.walk())
        assert any(op.name == "affine.for" for op in module.walk())
        ir.verify(module)

    def test_tensor_arguments_become_memrefs(self):
        module, func_op = build_chain_model(2)
        lower_graph_to_loops(module)
        from repro.ir.types import MemRefType

        assert isinstance(func_op.arguments[0].type, MemRefType)
        assert isinstance(func_op.get_attr("function_type").inputs[0], MemRefType)

    def test_conv_lowering_creates_reduction_nest(self):
        builder = GraphBuilder("single", (1, 3, 8, 8))
        out = builder.conv2d(builder.input, 4, 3, padding=1)
        module = builder.finish(out)
        lower_graph_to_loops(module)
        loops = [op for op in module.walk() if op.name == "affine.for"]
        # Init nest (4 loops) + reduction nest (7 loops).
        assert len(loops) == 11
        guards = [op for op in module.walk() if op.name == "affine.if"]
        assert guards, "padding should introduce a boundary guard"

    def test_conv_weights_are_quantized_buffers(self):
        builder = GraphBuilder("single", (1, 3, 8, 8))
        out = builder.conv2d(builder.input, 4, 3, padding=1)
        module = builder.finish(out)
        lower_graph_to_loops(module)
        from repro.ir.types import IntegerType

        weight_allocs = [op for op in module.walk() if op.name == "memref.alloc"
                         and "weight" in (op.get_attr("buffer_name") or "")]
        assert weight_allocs
        assert isinstance(weight_allocs[0].result().type.element_type, IntegerType)

    def test_split_then_lowered_module_verifies(self):
        module, func_op = build_bypass_model()
        legalize_dataflow(func_op)
        split_function(module, func_op)
        lower_graph_to_loops(module)
        ir.verify(module)
        calls = [op for op in func_op.walk() if op.name == "func.call"]
        from repro.ir.types import MemRefType

        assert all(isinstance(result.type, MemRefType)
                   for call in calls for result in call.results)

    def test_resnet_lowering_scales(self):
        module = resnet18()
        lowered = lower_graph_to_loops(module)
        assert lowered > 50
        ir.verify(module)

"""Tests for the redundancy-elimination passes."""

import numpy as np
import pytest

from repro import ir
from repro.affine import AffineMap, dim
from repro.affine.set import Constraint, IntegerSet
from repro.dialects import arith, func, memref
from repro.dialects.affine_ops import AffineForOp, AffineIfOp, AffineLoadOp, AffineStoreOp
from repro.ir import Builder, InsertionPoint, MemRefType, ModuleOp, f32, index
from repro.ir.interpreter import interpret_kernel
from repro.transforms import (
    canonicalize,
    eliminate_common_subexpressions,
    forward_stores,
    simplify_affine_ifs,
    simplify_memref_accesses,
)

from conftest import SYRK_SOURCE, compile_source, random_array, reference_syrk


def make_function(arg_types):
    module = ModuleOp("m")
    f = func.build_function(module, "f", arg_types)
    return module, f, Builder(InsertionPoint.at_end(f.body))


class TestCanonicalize:
    def test_integer_constant_folding(self):
        module, f, builder = make_function([])
        a = builder.insert(arith.ConstantOp(3, index))
        b = builder.insert(arith.ConstantOp(4, index))
        add = builder.insert(arith.AddIOp(a.result(), b.result()))
        buffer = builder.insert(memref.AllocOp(MemRefType((16,), f32)))
        value = builder.insert(arith.ConstantOp(1.0, f32))
        builder.insert(memref.StoreOp(value.result(), buffer.result(), [add.result()]))
        canonicalize(f)
        stores = [op for op in f.walk() if op.name == "memref.store"]
        folded = arith.constant_value(stores[0].indices[0])
        assert folded == 7

    def test_float_folding(self):
        module, f, builder = make_function([MemRefType((4,), f32)])
        a = builder.insert(arith.ConstantOp(2.0, f32))
        b = builder.insert(arith.ConstantOp(3.0, f32))
        mul = builder.insert(arith.MulFOp(a.result(), b.result()))
        zero = builder.insert(arith.ConstantOp(0, index))
        builder.insert(memref.StoreOp(mul.result(), f.arguments[0], [zero.result()]))
        canonicalize(f)
        stores = [op for op in f.walk() if op.name == "memref.store"]
        assert arith.constant_value(stores[0].value) == 6.0

    def test_dead_code_elimination(self):
        module, f, builder = make_function([])
        a = builder.insert(arith.ConstantOp(1.0, f32))
        builder.insert(arith.AddFOp(a.result(), a.result()))  # unused
        canonicalize(f)
        assert [op.name for op in f.body.operations] == []

    def test_stores_never_eliminated(self):
        module, f, builder = make_function([MemRefType((4,), f32)])
        zero = builder.insert(arith.ConstantOp(0, index))
        value = builder.insert(arith.ConstantOp(1.0, f32))
        builder.insert(memref.StoreOp(value.result(), f.arguments[0], [zero.result()]))
        canonicalize(f)
        assert any(op.name == "memref.store" for op in f.walk())

    def test_zero_trip_loop_removed(self):
        module, f, builder = make_function([])
        builder.insert(AffineForOp.constant_bounds(4, 4))
        canonicalize(f)
        assert not any(op.name == "affine.for" for op in f.walk())

    def test_single_iteration_loop_promoted(self):
        module, f, builder = make_function([MemRefType((4,), f32)])
        loop = builder.insert(AffineForOp.constant_bounds(2, 3))
        body = Builder(InsertionPoint.at_end(loop.body))
        value = body.insert(arith.ConstantOp(1.0, f32))
        body.insert(AffineStoreOp(value.result(), f.arguments[0], [loop.induction_variable]))
        canonicalize(f)
        assert not any(op.name == "affine.for" for op in f.walk())
        stores = [op for op in f.walk() if op.name == "affine.store"]
        assert len(stores) == 1

    def test_affine_apply_folding(self):
        module, f, builder = make_function([MemRefType((8,), f32)])
        from repro.dialects.affine_ops import AffineApplyOp

        c = builder.insert(arith.ConstantOp(3, index))
        apply_op = builder.insert(AffineApplyOp(AffineMap(1, 0, [dim(0) * 2 + 1]), [c.result()]))
        v = builder.insert(arith.ConstantOp(1.0, f32))
        builder.insert(AffineStoreOp(v.result(), f.arguments[0], [apply_op.result()]))
        canonicalize(f)
        stores = [op for op in f.walk() if op.name == "affine.store"]
        assert arith.constant_value(stores[0].indices[0]) == 7

    def test_canonicalize_is_idempotent(self, gemm_module):
        f = gemm_module.functions()[0]
        canonicalize(f)
        assert not canonicalize(f)


class TestCSE:
    def test_duplicate_constants_merged(self):
        module, f, builder = make_function([MemRefType((4,), f32)])
        a = builder.insert(arith.ConstantOp(1.0, f32))
        b = builder.insert(arith.ConstantOp(1.0, f32))
        add = builder.insert(arith.AddFOp(a.result(), b.result()))
        zero = builder.insert(arith.ConstantOp(0, index))
        builder.insert(memref.StoreOp(add.result(), f.arguments[0], [zero.result()]))
        removed = eliminate_common_subexpressions(f)
        assert removed >= 1
        assert add.operand(0) is add.operand(1)

    def test_identical_adds_merged(self):
        module, f, builder = make_function([MemRefType((4,), f32)])
        a = builder.insert(arith.ConstantOp(1.0, f32))
        add1 = builder.insert(arith.AddFOp(a.result(), a.result()))
        add2 = builder.insert(arith.AddFOp(a.result(), a.result()))
        mul = builder.insert(arith.MulFOp(add1.result(), add2.result()))
        zero = builder.insert(arith.ConstantOp(0, index))
        builder.insert(memref.StoreOp(mul.result(), f.arguments[0], [zero.result()]))
        eliminate_common_subexpressions(f)
        assert mul.operand(0) is mul.operand(1)

    def test_different_attributes_not_merged(self):
        module, f, builder = make_function([MemRefType((4,), f32)])
        a = builder.insert(arith.ConstantOp(1.0, f32))
        b = builder.insert(arith.ConstantOp(2.0, f32))
        zero = builder.insert(arith.ConstantOp(0, index))
        add = builder.insert(arith.AddFOp(a.result(), b.result()))
        builder.insert(memref.StoreOp(add.result(), f.arguments[0], [zero.result()]))
        removed = eliminate_common_subexpressions(f)
        assert a.parent is not None and b.parent is not None

    def test_loads_not_cse_by_this_pass(self):
        module, f, builder = make_function([MemRefType((4,), f32)])
        zero = builder.insert(arith.ConstantOp(0, index))
        load1 = builder.insert(memref.LoadOp(f.arguments[0], [zero.result()]))
        load2 = builder.insert(memref.LoadOp(f.arguments[0], [zero.result()]))
        add = builder.insert(arith.AddFOp(load1.result(), load2.result()))
        builder.insert(memref.StoreOp(add.result(), f.arguments[0], [zero.result()]))
        eliminate_common_subexpressions(f)
        assert load1.parent is not None and load2.parent is not None


class TestSimplifyAffineIf:
    def build_loop_with_guard(self, constraint_expr, is_equality=False):
        module, f, builder = make_function([MemRefType((16,), f32)])
        loop = builder.insert(AffineForOp.constant_bounds(0, 8))
        body = Builder(InsertionPoint.at_end(loop.body))
        guard = body.insert(AffineIfOp(
            IntegerSet(1, 0, [Constraint(constraint_expr, is_equality)]),
            [loop.induction_variable]))
        inner = Builder(InsertionPoint.at_end(guard.then_block))
        value = inner.insert(arith.ConstantOp(1.0, f32))
        inner.insert(AffineStoreOp(value.result(), f.arguments[0], [loop.induction_variable]))
        return module, f, loop

    def test_always_true_guard_inlined(self):
        module, f, loop = self.build_loop_with_guard(dim(0))  # iv >= 0 always holds
        assert simplify_affine_ifs(f) == 1
        assert not any(op.name == "affine.if" for op in f.walk())
        assert any(op.name == "affine.store" for op in f.walk())

    def test_never_true_guard_removed(self):
        module, f, loop = self.build_loop_with_guard(dim(0) - 100)
        assert simplify_affine_ifs(f) == 1
        assert not any(op.name == "affine.store" for op in f.walk())

    def test_data_dependent_guard_kept(self):
        module, f, loop = self.build_loop_with_guard(dim(0) - 4)
        assert simplify_affine_ifs(f) == 0
        assert any(op.name == "affine.if" for op in f.walk())

    def test_equality_guard_on_constant_range(self):
        module, f, loop = self.build_loop_with_guard(dim(0) + 5, is_equality=True)
        # iv + 5 == 0 can never hold for iv in [0, 8).
        assert simplify_affine_ifs(f) == 1
        assert not any(op.name == "affine.store" for op in f.walk())


class TestStoreForwardAndAccessSimplification:
    def build_straightline(self):
        module, f, builder = make_function([MemRefType((8,), f32)])
        zero = builder.insert(arith.ConstantOp(0, index))
        value = builder.insert(arith.ConstantOp(2.0, f32))
        builder.insert(AffineStoreOp(value.result(), f.arguments[0], [zero.result()]))
        load = builder.insert(AffineLoadOp(f.arguments[0], [zero.result()]))
        double = builder.insert(arith.AddFOp(load.result(), load.result()))
        builder.insert(AffineStoreOp(double.result(), f.arguments[0], [zero.result()]))
        return module, f

    def test_store_to_load_forwarding(self):
        module, f = self.build_straightline()
        forwarded = forward_stores(f)
        assert forwarded >= 1
        assert not any(op.name == "affine.load" for op in f.walk())

    def test_forwarding_blocked_by_intervening_store(self):
        module, f, builder = make_function([MemRefType((8,), f32)])
        zero = builder.insert(arith.ConstantOp(0, index))
        one = builder.insert(arith.ConstantOp(1, index))
        value = builder.insert(arith.ConstantOp(2.0, f32))
        builder.insert(AffineStoreOp(value.result(), f.arguments[0], [zero.result()]))
        other = builder.insert(arith.ConstantOp(3.0, f32))
        builder.insert(AffineStoreOp(other.result(), f.arguments[0], [one.result()]))
        load = builder.insert(AffineLoadOp(f.arguments[0], [zero.result()]))
        builder.insert(AffineStoreOp(load.result(), f.arguments[0], [one.result()]))
        # The store to index 1 might alias (conservatively) -> no forwarding.
        assert forward_stores(f) == 0

    def test_write_only_local_buffer_removed(self):
        module, f, builder = make_function([])
        buffer = builder.insert(memref.AllocOp(MemRefType((8,), f32)))
        zero = builder.insert(arith.ConstantOp(0, index))
        value = builder.insert(arith.ConstantOp(1.0, f32))
        builder.insert(AffineStoreOp(value.result(), buffer.result(), [zero.result()]))
        forward_stores(f)
        assert not any(op.name == "memref.alloc" for op in f.walk())

    def test_identical_loads_folded(self):
        module, f, builder = make_function([MemRefType((8,), f32)])
        zero = builder.insert(arith.ConstantOp(0, index))
        load1 = builder.insert(AffineLoadOp(f.arguments[0], [zero.result()]))
        load2 = builder.insert(AffineLoadOp(f.arguments[0], [zero.result()]))
        add = builder.insert(arith.AddFOp(load1.result(), load2.result()))
        builder.insert(AffineStoreOp(add.result(), f.arguments[0], [zero.result()]))
        removed = simplify_memref_accesses(f)
        assert removed == 1
        assert add.operand(0) is add.operand(1)

    def test_dead_store_removed(self):
        module, f, builder = make_function([MemRefType((8,), f32)])
        zero = builder.insert(arith.ConstantOp(0, index))
        first = builder.insert(arith.ConstantOp(1.0, f32))
        builder.insert(AffineStoreOp(first.result(), f.arguments[0], [zero.result()]))
        second = builder.insert(arith.ConstantOp(2.0, f32))
        builder.insert(AffineStoreOp(second.result(), f.arguments[0], [zero.result()]))
        removed = simplify_memref_accesses(f)
        assert removed == 1
        stores = [op for op in f.walk() if op.name == "affine.store"]
        assert len(stores) == 1
        assert stores[0].value is second.result()

    def test_store_not_dead_when_load_intervenes(self):
        module, f, builder = make_function([MemRefType((8,), f32)])
        zero = builder.insert(arith.ConstantOp(0, index))
        first = builder.insert(arith.ConstantOp(1.0, f32))
        builder.insert(AffineStoreOp(first.result(), f.arguments[0], [zero.result()]))
        load = builder.insert(AffineLoadOp(f.arguments[0], [zero.result()]))
        builder.insert(AffineStoreOp(load.result(), f.arguments[0], [zero.result()]))
        assert simplify_memref_accesses(f) == 0


class TestSemanticsPreservation:
    def test_cleanup_pipeline_preserves_syrk_results(self):
        module = compile_source(SYRK_SOURCE, "syrk")
        f = module.functions()[0]
        canonicalize(f)
        simplify_affine_ifs(f)
        forward_stores(f)
        simplify_memref_accesses(f)
        eliminate_common_subexpressions(f)
        canonicalize(f)
        ir.verify(module)

        C = random_array((16, 16), seed=11)
        A = random_array((16, 8), seed=12)
        expected = reference_syrk(1.25, 0.75, C, A)
        interpret_kernel(module, "syrk", {"C": C, "A": A},
                         {"alpha": 1.25, "beta": 0.75})
        np.testing.assert_allclose(C, expected, rtol=1e-5)

"""Tests for the command-line driver."""

import pytest

from repro.tools.driver import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_with_kernel(self):
        args = build_parser().parse_args(["compile", "--kernel", "gemm", "--size", "16"])
        assert args.command == "compile"
        assert args.kernel == "gemm"

    def test_dnn_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dnn", "alexnet"])


class TestCommands:
    def test_compile_prints_ir(self, capsys):
        assert main(["compile", "--kernel", "gemm", "--size", "8"]) == 0
        output = capsys.readouterr().out
        assert "affine.for" in output

    def test_compile_from_file(self, tmp_path, capsys):
        source = tmp_path / "kernel.c"
        source.write_text("""
        void scale(float A[8]) {
          for (int i = 0; i < 8; i++) { A[i] *= 2.0; }
        }""")
        assert main(["compile", str(source)]) == 0
        assert "scale" in capsys.readouterr().out

    def test_compile_without_input_fails(self):
        with pytest.raises(SystemExit):
            main(["compile"])

    def test_estimate_with_point(self, capsys):
        assert main(["estimate", "--kernel", "gemm", "--size", "8",
                     "--perfectize", "--perm", "1,2,0", "--tiles", "1,1,2"]) == 0
        output = capsys.readouterr().out
        assert "baseline" in output
        assert "speedup" in output

    def test_unknown_platform_rejected(self):
        with pytest.raises(SystemExit):
            main(["estimate", "--kernel", "gemm", "--size", "8", "--platform", "ultra99"])

    def test_dse_command(self, capsys):
        assert main(["dse", "--kernel", "gemm", "--size", "16",
                     "--samples", "4", "--iterations", "2"]) == 0
        output = capsys.readouterr().out
        assert "Pareto frontier" in output
        assert "finalized" in output

    def test_dse_with_jobs_matches_serial(self, capsys):
        base = ["dse", "--kernel", "gemm", "--size", "8",
                "--samples", "4", "--iterations", "4"]
        assert main(base + ["--jobs", "1"]) == 0
        serial_output = capsys.readouterr().out
        assert main(base + ["--jobs", "2"]) == 0
        parallel_output = capsys.readouterr().out
        # Identical trajectory, identical report (wall time differs, and with
        # it the throughput/utilization lines of the run summary; prefix
        # snapshot caches are per-worker, so their hit counts vary with
        # --jobs even though every record is identical).
        timing_markers = ("evaluated", "evaluations/sec", "utilization",
                          "prefix snapshots")
        strip = lambda text: [line for line in text.splitlines()
                              if not any(m in line for m in timing_markers)]
        assert strip(serial_output) == strip(parallel_output)

    def test_dse_cache_and_resume_flags(self, tmp_path, capsys):
        cache = str(tmp_path / "cache.jsonl")
        checkpoint = str(tmp_path / "dse.ckpt.json")
        base = ["dse", "--kernel", "gemm", "--size", "8", "--samples", "4",
                "--iterations", "4", "--cache", cache,
                "--checkpoint", checkpoint, "--checkpoint-every", "2"]
        assert main(base) == 0
        cold = capsys.readouterr().out
        assert "misses" in cold
        assert main(base + ["--resume"]) == 0
        warm = capsys.readouterr().out
        assert "finalized" in warm

    def test_dse_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            main(["dse", "--kernel", "gemm", "--size", "8", "--resume"])

    def test_dse_all_functions(self, tmp_path, capsys):
        source = tmp_path / "pair.c"
        source.write_text("""
        void scale(float A[8]) {
          for (int i = 0; i < 8; i++) { A[i] *= 2.0; }
        }
        void shift(float B[8]) {
          for (int i = 0; i < 8; i++) { B[i] += 1.0; }
        }""")
        assert main(["dse", str(source), "--all-functions",
                     "--samples", "2", "--iterations", "2"]) == 0
        output = capsys.readouterr().out
        assert "scale: " in output
        assert "shift: " in output

    def test_emit_to_file(self, tmp_path, capsys):
        target = tmp_path / "kernel.cpp"
        assert main(["emit", "--kernel", "gemm", "--size", "8",
                     "--perfectize", "--tiles", "1,1,2", "-o", str(target)]) == 0
        code = target.read_text()
        assert "void gemm(" in code
        assert "#pragma HLS" in code

    def test_dnn_command(self, capsys):
        assert main(["dnn", "mobilenet", "--graph-level", "2", "--loop-level", "1"]) == 0
        output = capsys.readouterr().out
        assert "speedup" in output
        assert "dsp" in output


class TestPlatformFlags:
    def test_multi_platform_dse_reports_per_platform(self, capsys):
        assert main(["dse", "--kernel", "gemm", "--size", "8",
                     "--samples", "4", "--iterations", "4",
                     "--platform", "xc7z020", "--platform", "vu9p-slr"]) == 0
        output = capsys.readouterr().out
        assert "per-platform Pareto frontiers" in output
        assert "[xc7z020] finalized" in output
        assert "[vu9p-slr] finalized" in output

    def test_frontier_out_stable_across_jobs(self, tmp_path, capsys):
        base = ["dse", "--kernel", "gemm", "--size", "8",
                "--samples", "4", "--iterations", "4",
                "--platform", "xc7z020", "--platform", "vu9p-slr"]
        serial, threaded = tmp_path / "j1.json", tmp_path / "j2.json"
        assert main(base + ["--frontier-out", str(serial)]) == 0
        assert main(base + ["--jobs", "2", "--frontier-out", str(threaded)]) == 0
        capsys.readouterr()
        assert serial.read_bytes() == threaded.read_bytes()
        document = __import__("json").loads(serial.read_text())
        assert sorted(document["platform_frontiers"]) == ["vu9p-slr", "xc7z020"]

    def test_platform_config_file_defines_the_sweep(self, tmp_path, capsys):
        config = tmp_path / "platforms.json"
        config.write_text(
            '{"platforms": [{"name": "tiny", "memory_bits": 1000000, '
            '"dsp": 60, "lut": 20000}]}')
        assert main(["estimate", "--kernel", "gemm", "--size", "8",
                     "--platform-config", str(config)]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_platform_config_errors_are_actionable(self, tmp_path):
        config = tmp_path / "bad.json"
        config.write_text('{"platforms": [{"name": "x"}]}')
        with pytest.raises(SystemExit, match="platform-config"):
            main(["estimate", "--kernel", "gemm", "--size", "8",
                  "--platform-config", str(config)])

    def test_single_target_commands_reject_sweeps(self):
        with pytest.raises(SystemExit, match="single platform"):
            main(["estimate", "--kernel", "gemm", "--size", "8",
                  "--platform", "xc7z020", "--platform", "vu9p-slr"])


class TestPipelineFlags:
    def test_estimate_accepts_pipeline(self, capsys):
        assert main(["estimate", "--kernel", "gemm", "--size", "8",
                     "--pipeline",
                     "func.func(raise-scf-to-affine,canonicalize,cse)"]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_emit_accepts_pipeline(self, tmp_path, capsys):
        target = tmp_path / "kernel.cpp"
        assert main(["emit", "--kernel", "gemm", "--size", "8",
                     "--pipeline", "func.func(raise-scf-to-affine,canonicalize)",
                     "--perfectize", "--tiles", "1,1,2", "-o", str(target)]) == 0
        assert "void gemm(" in target.read_text()

    def test_estimate_rejects_bad_pipeline(self):
        with pytest.raises(Exception):
            main(["estimate", "--kernel", "gemm", "--size", "8",
                  "--pipeline", "func.func(not-a-pass)"])


class TestInstrumentationFlags:
    def test_print_pass_timing_includes_pattern_stats(self, capsys):
        assert main(["compile", "--kernel", "gemm", "--size", "8",
                     "--print-pass-timing"]) == 0
        output = capsys.readouterr().out
        assert "Pass execution timing report" in output
        assert "Rewrite pattern statistics" in output
        assert "hits" in output

    def test_dump_ir_after_writes_numbered_snapshots(self, tmp_path, capsys):
        dump_dir = tmp_path / "dumps"
        assert main(["compile", "--kernel", "gemm", "--size", "8",
                     "--dump-ir-after", "canonicalize",
                     "--dump-ir-dir", str(dump_dir)]) == 0
        snapshots = sorted(p.name for p in dump_dir.iterdir())
        assert snapshots == ["0001-canonicalize.mlir"]
        assert "affine.for" in (dump_dir / snapshots[0]).read_text()

    def test_dump_ir_after_all(self, tmp_path):
        dump_dir = tmp_path / "dumps"
        assert main(["compile", "--kernel", "gemm", "--size", "8",
                     "--dump-ir-after", "all",
                     "--dump-ir-dir", str(dump_dir)]) == 0
        snapshots = sorted(p.name for p in dump_dir.iterdir())
        assert len(snapshots) >= 2  # raise-scf-to-affine + canonicalize
        assert snapshots[0].startswith("0001-")

    def test_dump_ir_after_resolves_aliases(self, tmp_path):
        dump_dir = tmp_path / "dumps"
        # 'loop-unroll' is an alias of 'affine-loop-unroll'; resolution must
        # succeed even though the pass does not run in the compile flow.
        assert main(["compile", "--kernel", "gemm", "--size", "8",
                     "--dump-ir-after", "loop-unroll",
                     "--dump-ir-dir", str(dump_dir)]) == 0
        assert not dump_dir.exists()  # nothing dumped, nothing created

    def test_dump_ir_after_unknown_pass_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown pass"):
            main(["compile", "--kernel", "gemm", "--size", "8",
                  "--dump-ir-after", "not-a-pass",
                  "--dump-ir-dir", str(tmp_path / "dumps")])

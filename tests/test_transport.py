"""Tests for the distributed DSE transport: frame (de)serialization, the
shared deterministic backoff schedule, session-fingerprint handshakes,
frontier parity between serial / local-pool / remote-agent topologies, and
transport-level chaos (disconnects, garbage frames, stalls, killed agents)
with charged-vs-uncharged fault attribution."""

import os
import socket

import pytest

from repro import obs
from repro.dse import KernelDesignSpace
from repro.dse.runtime import (
    FaultPlan,
    ParallelExplorer,
    RemotePoolBackend,
    SupervisionPolicy,
    TransportConfig,
    backoff_delay,
)
from repro.dse.runtime.transport import (
    _MAX_RECONNECT_DELAY,
    PROTOCOL_VERSION,
    FrameError,
    _corrupt_frame,
    recv_frame,
    send_frame,
    session_fingerprint,
)
from repro.dse.runtime.worker import KernelContext, ProcessPoolBackend
from repro.estimation import XC7Z020
from repro.tools.driver import build_parser, main

from conftest import GEMM_SOURCE, compile_source


def frontier_signature(result):
    """Byte-comparable rendering of a frontier (encoded point + objectives)."""
    return repr([(p.encoded, p.latency, p.area) for p in result.frontier])


def small_explorer(**overrides):
    config = dict(platform=XC7Z020, num_samples=6, max_iterations=8, seed=11,
                  jobs=1, batch_size=4)
    config.update(overrides)
    return ParallelExplorer(**config)


def fast_policy(**overrides):
    """A supervision policy with near-zero backoff so retries don't stall tests."""
    config = dict(max_retries=2, backoff=0.001)
    config.update(overrides)
    return SupervisionPolicy(**config)


def fast_transport(**overrides):
    """Loopback transport tuned for test latency: quick heartbeats and
    near-instant agent reconnects."""
    config = dict(spawn_workers=2, heartbeat_interval=0.2,
                  heartbeat_timeout=5.0, connect_timeout=60.0,
                  reconnect_base=0.05)
    config.update(overrides)
    return TransportConfig(**config)


@pytest.fixture
def gemm_module():
    return compile_source(GEMM_SOURCE, "gemm")


def _context(module, faults=None):
    space = KernelDesignSpace.from_function(module.functions()[0])
    return KernelContext(module=module, func_name=None, platform=XC7Z020,
                         space=space, faults=faults)


# -- framing --------------------------------------------------------------------------------


class TestFraming:
    def _pair(self):
        left, right = socket.socketpair()
        left.settimeout(5.0)
        right.settimeout(5.0)
        return left, right

    def test_round_trip(self):
        left, right = self._pair()
        try:
            send_frame(left, "task", {"id": 7, "encoded": (1, 2, 3)})
            assert recv_frame(right) == ("task", {"id": 7,
                                                  "encoded": (1, 2, 3)})
        finally:
            left.close()
            right.close()

    def test_corrupt_frame_rejected(self):
        left, right = self._pair()
        try:
            left.sendall(_corrupt_frame())
            with pytest.raises(FrameError, match="checksum mismatch"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_bad_magic_rejected(self):
        left, right = self._pair()
        try:
            send_frame(left, "task", {"id": 1})
            # Stomp the magic without touching the rest of the stream.
            data = right.recv(1 << 16)
            patched = b"XXXX" + data[4:]
            other_left, other_right = self._pair()
            try:
                other_left.sendall(patched)
                with pytest.raises(FrameError, match="bad frame magic"):
                    recv_frame(other_right)
            finally:
                other_left.close()
                other_right.close()
        finally:
            left.close()
            right.close()

    def test_oversized_length_rejected(self):
        import struct

        from repro.dse.runtime import transport

        left, right = self._pair()
        try:
            header = struct.pack("!4sII", b"RDSE",
                                 transport.MAX_FRAME_BYTES + 1, 0)
            left.sendall(header)
            with pytest.raises(FrameError, match="oversized frame"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_undecodable_payload_rejected(self):
        import struct
        import zlib

        left, right = self._pair()
        try:
            payload = b"this is not a pickle"
            left.sendall(struct.pack("!4sII", b"RDSE", len(payload),
                                     zlib.crc32(payload)) + payload)
            with pytest.raises(FrameError, match="undecodable frame payload"):
                recv_frame(right)
        finally:
            left.close()
            right.close()


# -- the shared backoff schedule ------------------------------------------------------------


class TestBackoffDelay:
    def test_schedule_doubles_from_base(self):
        assert [backoff_delay(n, 0.25) for n in range(5)] \
            == [0.25, 0.25, 0.5, 1.0, 2.0]

    def test_supervision_policy_uses_shared_schedule(self):
        # Satellite contract: evaluation retries and agent reconnects pace
        # themselves off the *same* public function.
        policy = SupervisionPolicy(backoff=0.5)
        for attempt in (1, 2, 3, 7):
            assert policy.backoff_seconds(attempt) \
                == backoff_delay(attempt, policy.backoff)

    def test_reconnect_cap_bounds_the_schedule(self):
        # An agent sleeping min(backoff_delay, cap) never waits minutes.
        assert min(backoff_delay(30, 0.25), _MAX_RECONNECT_DELAY) \
            == _MAX_RECONNECT_DELAY


# -- session fingerprints -------------------------------------------------------------------


class TestSessionFingerprint:
    def test_stable_and_sensitive(self, gemm_module):
        contexts = {"kernel": _context(gemm_module)}
        first = session_fingerprint(contexts, "pipe-a")
        assert first == session_fingerprint(contexts, "pipe-a")
        assert first != session_fingerprint(contexts, "pipe-b")
        assert first != session_fingerprint({}, "pipe-a")
        assert len(first) == 20


# -- handshake rejections -------------------------------------------------------------------


class TestHandshakeRejection:
    @pytest.fixture
    def backend(self, gemm_module):
        backend = RemotePoolBackend({"kernel": _context(gemm_module)},
                                    TransportConfig())
        backend.start()
        yield backend
        backend.close()

    def _connect(self, backend):
        sock = socket.create_connection(backend.address, timeout=5.0)
        sock.settimeout(5.0)
        return sock

    def test_protocol_mismatch_rejected(self, backend):
        sock = self._connect(backend)
        try:
            send_frame(sock, "hello", {"protocol": PROTOCOL_VERSION + 1,
                                       "session": "", "agent": "test"})
            kind, data = recv_frame(sock)
            assert kind == "reject"
            assert "protocol version mismatch" in data["error"]
        finally:
            sock.close()

    def test_stale_session_rejected(self, backend):
        sock = self._connect(backend)
        try:
            send_frame(sock, "hello", {"protocol": PROTOCOL_VERSION,
                                       "session": "f" * 20, "agent": "test"})
            kind, data = recv_frame(sock)
            assert kind == "reject"
            assert "session fingerprint mismatch" in data["error"]
            assert "restart it against this coordinator" in data["error"]
        finally:
            sock.close()

    def test_pipeline_mismatch_rejected(self, backend):
        sock = self._connect(backend)
        try:
            send_frame(sock, "hello", {"protocol": PROTOCOL_VERSION,
                                       "session": "", "agent": "test"})
            kind, data = recv_frame(sock)
            assert kind == "welcome"
            assert data["session"] == backend._session
            send_frame(sock, "ready", {"pipeline": "bogus-signature",
                                       "agent": "test"})
            kind, data = recv_frame(sock)
            assert kind == "reject"
            assert "worker pipeline mismatch" in data["error"]
        finally:
            sock.close()


# -- frontier parity across topologies ------------------------------------------------------


class TestRemoteParity:
    def test_two_agents_match_serial_byte_for_byte(self, gemm_module):
        clean = small_explorer().explore(gemm_module)
        backend = RemotePoolBackend({"kernel": _context(gemm_module)},
                                    fast_transport(),
                                    supervision=fast_policy())
        try:
            with obs.session() as session:
                backend.warm_up()  # both agents handshake before any task
                remote = small_explorer().explore(gemm_module,
                                                  backend=backend)
        finally:
            backend.close()
        counters = session.metrics.counters
        assert counters.get("dse.transport.connects", 0) >= 2
        assert counters.get("dse.transport.requeues", 0) == 0
        assert frontier_signature(remote) == frontier_signature(clean)
        assert set(remote.records) == set(clean.records)

    def test_explorer_owned_transport_matches_serial(self, gemm_module):
        # The explorer builds (and tears down) the RemotePoolBackend itself
        # when given a transport config — the `--workers N` code path.
        clean = small_explorer().explore(gemm_module)
        remote = small_explorer(
            transport=fast_transport(spawn_workers=1),
            supervision=fast_policy()).explore(gemm_module)
        assert frontier_signature(remote) == frontier_signature(clean)
        assert set(remote.records) == set(clean.records)


# -- transport chaos ------------------------------------------------------------------------


class TestTransportChaos:
    def _chaotic(self, module, plan, transport, **overrides):
        with obs.session() as session:
            result = small_explorer(transport=transport, faults=plan,
                                    supervision=fast_policy(),
                                    **overrides).explore(module)
        return result, session.metrics.counters

    def test_disconnect_is_uncharged_and_identical(self, gemm_module,
                                                   tmp_path):
        clean = small_explorer().explore(gemm_module)
        plan = FaultPlan(mode="disconnect", select=3, times=1,
                         state_dir=str(tmp_path / "ledger"))
        result, counters = self._chaotic(gemm_module, plan, fast_transport())
        assert os.listdir(plan.state_dir)  # faults actually fired
        assert counters.get("dse.transport.disconnects", 0) >= 1
        assert counters.get("dse.transport.requeues", 0) >= 1
        # Uncharged: innocent points never burn retries, never quarantine.
        assert result.num_quarantined == 0
        assert counters.get("dse.faults.retries", 0) == 0
        assert frontier_signature(result) == frontier_signature(clean)
        assert set(result.records) == set(clean.records)

    def test_garbage_frame_poisons_connection(self, gemm_module, tmp_path):
        clean = small_explorer().explore(gemm_module)
        plan = FaultPlan(mode="garbage-frame", select=3, times=1,
                         state_dir=str(tmp_path / "ledger"))
        result, counters = self._chaotic(gemm_module, plan, fast_transport())
        assert os.listdir(plan.state_dir)
        assert counters.get("dse.transport.garbage_frames", 0) >= 1
        assert counters.get("dse.transport.requeues", 0) >= 1
        assert result.num_quarantined == 0
        assert frontier_signature(result) == frontier_signature(clean)

    def test_stall_blows_heartbeat_window(self, gemm_module, tmp_path):
        clean = small_explorer().explore(gemm_module)
        plan = FaultPlan(mode="stall", select=3, times=1, hang_seconds=2.0,
                         state_dir=str(tmp_path / "ledger"))
        transport = fast_transport(heartbeat_interval=0.2,
                                   heartbeat_timeout=1.0)
        result, counters = self._chaotic(gemm_module, plan, transport)
        assert os.listdir(plan.state_dir)
        assert counters.get("dse.transport.heartbeat_misses", 0) >= 1
        assert counters.get("dse.transport.requeues", 0) >= 1
        assert result.num_quarantined == 0
        assert frontier_signature(result) == frontier_signature(clean)

    def test_poison_quarantines_identically_over_transport(self, gemm_module,
                                                           tmp_path):
        # Charged faults: a worker-*reported* error consumes retries and
        # quarantines byte-identically at any topology.
        plan = FaultPlan(mode="poison", select=2,
                         state_dir=str(tmp_path / "ledger"))
        config = dict(faults=plan, supervision=fast_policy(max_retries=1))
        serial = small_explorer(**config).explore(gemm_module)
        remote = small_explorer(transport=fast_transport(),
                                **config).explore(gemm_module)
        assert serial.num_quarantined > 0
        quarantined = lambda r: [(rec.encoded, rec.status, rec.error)
                                 for rec in r.quarantined_records()]
        assert quarantined(remote) == quarantined(serial)
        assert frontier_signature(remote) == frontier_signature(serial)
        assert set(remote.records) == set(serial.records)


class _KillAgentAfterFirstBatch:
    """Backend wrapper that SIGKILLs one agent subprocess between the first
    and second evaluated batch — a deterministic mid-run crash (a timer
    could land after a fast sweep already finished and prove nothing)."""

    def __init__(self, inner):
        self._inner = inner
        self.jobs = inner.jobs
        self.killed = False

    def evaluate(self, key, batch):
        records = self._inner.evaluate(key, batch)
        if not self.killed:
            self._inner._agents[0].kill()  # SIGKILL, no cleanup
            self.killed = True
        return records

    def close(self):
        self._inner.close()


class TestAgentKilledMidRun:
    def test_sigkill_agent_is_uncharged_and_identical(self, gemm_module):
        clean = small_explorer().explore(gemm_module)
        remote = RemotePoolBackend({"kernel": _context(gemm_module)},
                                   fast_transport(heartbeat_interval=0.1,
                                                  heartbeat_timeout=1.0),
                                   supervision=fast_policy())
        backend = _KillAgentAfterFirstBatch(remote)
        try:
            with obs.session() as session:
                remote.warm_up()  # both agents join before the first batch
                result = small_explorer().explore(gemm_module,
                                                  backend=backend)
        finally:
            backend.close()
        assert backend.killed, "agent was never killed — test proved nothing"
        counters = session.metrics.counters
        # Every batch after the kill must route around the dead connection:
        # its in-flight task comes back uncharged and the drop is counted.
        assert counters.get("dse.transport.disconnects", 0) >= 1
        assert counters.get("dse.transport.requeues", 0) >= 1
        # The kill is a transport fault, never the point's fault: no retry
        # budget burned, no spurious quarantine, same frontier.
        assert result.num_quarantined == 0
        assert counters.get("dse.faults.retries", 0) == 0
        assert frontier_signature(result) == frontier_signature(clean)
        assert set(result.records) == set(clean.records)


# -- pool kill-error surfacing --------------------------------------------------------------


class _UnkillableProcess:
    pid = 4242

    def kill(self):
        raise OSError("process handle already closed")


class _FakeExecutor:
    def __init__(self):
        self._processes = {1: _UnkillableProcess()}
        self.shutdowns = []

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdowns.append((wait, cancel_futures))


class TestKillErrorsSurfaced:
    def test_terminate_warns_and_counts(self):
        executor = _FakeExecutor()
        with obs.session() as session:
            with pytest.warns(RuntimeWarning,
                              match="failed to kill worker process 4242"):
                ProcessPoolBackend._terminate(None, executor)
        assert session.metrics.counters.get("dse.pool.kill_errors") == 1
        assert executor.shutdowns == [(False, True)]


# -- driver surface -------------------------------------------------------------------------


class TestDriverTransportFlags:
    def test_dse_accepts_transport_flags(self):
        args = build_parser().parse_args(
            ["dse", "--kernel", "gemm", "--listen", "127.0.0.1:7870",
             "--workers", "2"])
        assert args.listen == "127.0.0.1:7870"
        assert args.workers == 2

    def test_dnn_accepts_transport_flags(self):
        args = build_parser().parse_args(
            ["dnn", "mobilenet", "--dse", "--workers", "1"])
        assert args.workers == 1
        assert args.listen is None

    def test_bad_listen_rejected(self):
        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(["dse", "--kernel", "gemm", "--size", "8", "--samples", "2",
                  "--iterations", "1", "--listen", "nonsense"])

    def test_negative_workers_rejected(self):
        with pytest.raises(SystemExit, match="--workers must be >= 0"):
            main(["dse", "--kernel", "gemm", "--size", "8", "--samples", "2",
                  "--iterations", "1", "--workers", "-1"])

    def test_zero_task_timeout_rejected(self):
        with pytest.raises(SystemExit, match="--task-timeout must be a "
                                             "positive number"):
            main(["dse", "--kernel", "gemm", "--size", "8", "--samples", "2",
                  "--iterations", "1", "--task-timeout", "0"])

    def test_negative_max_retries_rejected(self):
        with pytest.raises(SystemExit, match="--max-retries must be >= 0"):
            main(["dse", "--kernel", "gemm", "--size", "8", "--samples", "2",
                  "--iterations", "1", "--max-retries", "-1"])

    def test_dnn_validates_supervision_flags_too(self):
        with pytest.raises(SystemExit, match="--task-timeout"):
            main(["dnn", "mobilenet", "--dse", "--smoke",
                  "--task-timeout", "-3"])

    def test_worker_agent_bad_connect_rejected(self):
        with pytest.raises(SystemExit, match="--connect expects HOST:PORT"):
            main(["worker-agent", "--connect", "nowhere"])

    def test_worker_agent_bad_reconnect_base_rejected(self):
        with pytest.raises(SystemExit, match="--reconnect-base"):
            main(["worker-agent", "--connect", "127.0.0.1:7870",
                  "--reconnect-base", "0"])

    def test_worker_agent_bad_max_reconnects_rejected(self):
        with pytest.raises(SystemExit, match="--max-reconnects"):
            main(["worker-agent", "--connect", "127.0.0.1:7870",
                  "--max-reconnects", "-1"])

    def test_transport_fault_modes_parse(self, tmp_path):
        for mode in ("disconnect", "stall", "garbage-frame"):
            plan = FaultPlan.parse(f"{mode}:select=2,state_dir={tmp_path}")
            assert plan.transport_fault
            assert not plan.requires_process_isolation

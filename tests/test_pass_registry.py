"""Tests for the pass registry, the textual pipeline syntax and the
redesigned PassManager instrumentation."""

import pickle

import pytest

from repro.dialects import arith, func
from repro.ir import (
    Builder,
    InsertionPoint,
    ModuleOp,
    PassError,
    PassManager,
    build_pipeline,
    collect_pass_timings,
    f32,
    parse_pipeline,
    pipeline_signature,
    registered_passes,
)
from repro.ir.pass_registry import build_pipeline_cached, pass_aliases
from repro.transforms import AffineLoopUnrollPass


def build_simple_module():
    module = ModuleOp("m")
    f = func.build_function(module, "f", [f32])
    builder = Builder(InsertionPoint.at_end(f.body))
    a = builder.insert(arith.ConstantOp(1.0, f32))
    b = builder.insert(arith.ConstantOp(2.0, f32))
    builder.insert(arith.AddFOp(a.result(), b.result()))
    builder.insert(func.ReturnOp())
    return module, f


class TestRegistry:
    def test_transform_library_is_registered(self):
        names = set(registered_passes())
        expected = {
            "canonicalize", "cse", "simplify-affine-if", "affine-store-forward",
            "simplify-memref-access", "affine-loop-perfectization",
            "remove-variable-bound", "affine-loop-order-opt", "affine-loop-tile",
            "affine-loop-unroll", "loop-pipelining", "func-pipelining",
            "array-partition", "legalize-dataflow", "split-function",
            "lower-graph-to-loops", "raise-scf-to-affine", "apply-design-point",
            "dnn-loop-opt",
        }
        assert expected <= names

    def test_aliases_resolve_to_canonical_names(self):
        aliases = pass_aliases()
        assert aliases["loop-tiling"] == "affine-loop-tile"
        assert aliases["pipeline"] == "loop-pipelining"
        # An alias builds the canonical pass, and prints canonically.
        assert build_pipeline("loop-tiling{sizes=2,2}").to_spec() \
            == "affine-loop-tile{sizes=2,2}"

    def test_unknown_pass_is_actionable(self):
        with pytest.raises(PassError, match="unknown pass 'no-such-pass'"):
            build_pipeline("no-such-pass")

    def test_every_registered_pass_default_constructs_and_pickles(self):
        for name, cls in registered_passes().items():
            instance = cls()
            assert instance.name == name
            restored = pickle.loads(pickle.dumps(instance))
            assert restored.display_name == instance.display_name


class TestPipelineParsing:
    ROUND_TRIPS = [
        "canonicalize",
        "canonicalize,cse",
        "affine-loop-tile{sizes=4,4},loop-pipelining{ii=2}",
        "func.func(raise-scf-to-affine,canonicalize)",
        "builtin.module(func.func(canonicalize,cse),lower-graph-to-loops)",
        "apply-design-point{perfectize=true,rvb=true,perm=1,2,0,tiles=2,1,2}",
        "legalize-dataflow{insert-copy=true}",
    ]

    @pytest.mark.parametrize("spec", ROUND_TRIPS)
    def test_parse_print_parse_round_trip(self, spec):
        printed = build_pipeline(spec).to_spec()
        reprinted = build_pipeline(printed).to_spec()
        assert printed == reprinted
        # The raw parse also round-trips at the syntax level.
        assert str(parse_pipeline(str(parse_pipeline(spec)))) == str(parse_pipeline(spec))

    def test_default_options_are_normalized_away(self):
        assert build_pipeline("loop-pipelining{ii=1}").to_spec() == "loop-pipelining"
        assert pipeline_signature("canonicalize, cse") == "canonicalize,cse"

    def test_list_option_commas_bind_to_the_option(self):
        pm = build_pipeline("affine-loop-tile{sizes=8,4,2,default-size=4}")
        tile_pass = pm.passes[0]
        assert tuple(tile_pass.tile_sizes) == (8, 4, 2)
        assert tile_pass.default_size == 4

    @pytest.mark.parametrize("bad, message", [
        ("canonicalize{bogus=1}", "has no option 'bogus'"),
        ("affine-loop-unroll{factor=x}", "expects an integer"),
        ("legalize-dataflow{insert-copy=maybe}", "expects true/false"),
        ("affine-loop-tile{sizes=4,x}", "list of integers"),
        ("canonicalize{", "unbalanced"),
        ("canonicalize{}", "empty option braces"),
        ("canonicalize(cse)", "cannot anchor"),
        ("func.func(canonicalize", "unbalanced"),
        ("func.func()", "expected a pass or anchor name"),
        ("", "expected a pass or anchor name"),
        ("canonicalize,,cse", "expected a pass or anchor name"),
    ])
    def test_malformed_specs_raise_pass_errors(self, bad, message):
        with pytest.raises(PassError, match=message):
            build_pipeline(bad)

    @pytest.mark.parametrize("bad, message", [
        ("func.func(lower-graph-to-loops)", "cannot run inside 'func.func"),
        ("func.func(builtin.module(canonicalize))", "outermost operation"),
        ("func.func(func.func(canonicalize))",
         "only 'builtin.module' can contain nested anchors"),
    ])
    def test_nested_anchor_errors(self, bad, message):
        with pytest.raises(PassError, match=message):
            build_pipeline(bad)

    def test_module_anchor_reaches_nested_targets(self):
        module, f = build_simple_module()
        build_pipeline("builtin.module(canonicalize)").run(module)
        assert not [op for op in f.walk() if op.name == "arith.addf"]


class TestPipelineSpecFuzz:
    """Property-style round-trip fuzzing of the textual pipeline syntax.

    Specs are generated from the real registry (names, declared options,
    anchors), so the corpus tracks the transform library as it grows.  Every
    generated spec must round-trip to a fixed point through parse/print, and
    targeted corruptions of a valid spec must fail with an actionable
    :class:`PassError` — never a raw crash or a silent acceptance.
    """

    ROUNDS = 60

    @staticmethod
    def _random_value(option, rng):
        if option.type == "int":
            return str(rng.choice([1, 2, 3, 4, 8, 16]))
        if option.type == "bool":
            return rng.choice(["true", "false", "1", "0"])
        if option.type == "int-list":
            return ",".join(str(rng.choice([1, 2, 4, 8]))
                            for _ in range(rng.randint(1, 3)))
        return rng.choice(["f", "stage0", "forward_node"])  # str

    @classmethod
    def _random_pass(cls, rng, registry):
        name, pass_cls = rng.choice(registry)
        rendered = []
        for option in pass_cls.OPTIONS:
            if rng.random() < 0.5:
                rendered.append(f"{option.name}={cls._random_value(option, rng)}")
        return f"{name}{{{','.join(rendered)}}}" if rendered else name

    @classmethod
    def _random_spec(cls, rng):
        function_passes = [(name, cls_) for name, cls_ in
                           sorted(registered_passes().items())
                           if cls_.target_op == "func.func"]
        any_passes = sorted(registered_passes().items())
        elements = []
        for _ in range(rng.randint(1, 4)):
            shape = rng.random()
            if shape < 0.2:
                inner = ",".join(cls._random_pass(rng, function_passes)
                                 for _ in range(rng.randint(1, 3)))
                elements.append(f"func.func({inner})")
            elif shape < 0.35:
                inner = ",".join(cls._random_pass(rng, any_passes)
                                 for _ in range(rng.randint(1, 2)))
                elements.append(f"builtin.module({inner})")
            else:
                elements.append(cls._random_pass(rng, any_passes))
        return ",".join(elements)

    def test_generated_specs_reach_a_print_fixed_point(self):
        import random

        rng = random.Random(2022)
        for _ in range(self.ROUNDS):
            spec = self._random_spec(rng)
            printed = build_pipeline(spec).to_spec()
            # The canonical form is a fixed point of parse/print.
            assert build_pipeline(printed).to_spec() == printed, spec
            # The raw syntax round-trips below the registry too.
            reparsed = str(parse_pipeline(str(parse_pipeline(spec))))
            assert reparsed == str(parse_pipeline(spec)), spec

    def test_corrupted_specs_raise_actionable_errors(self):
        import random

        rng = random.Random(7)
        corruptions = [
            lambda s: s.replace(s.split(",")[0].split("{")[0],
                                "no-such-pass-xyz", 1),
            lambda s: s + "{",
            lambda s: s + "{}",
            lambda s: "," + s,
            lambda s: s + ",",
            lambda s: s.replace(",", ",,", 1) if "," in s else s + ",,cse",
            lambda s: f"cse({s})",
            lambda s: f"func.func(builtin.module({s}))",
        ]
        for _ in range(self.ROUNDS):
            spec = self._random_spec(rng)
            corrupt = rng.choice(corruptions)(spec)
            with pytest.raises(PassError) as excinfo:
                build_pipeline(corrupt)
            # Actionable: the error names the offense, never an empty shrug.
            message = str(excinfo.value)
            assert len(message) > 20, corrupt

    def test_option_value_corruptions_name_the_option(self):
        for bad, fragment in [
            ("affine-loop-unroll{factor=banana}", "expects an integer"),
            ("affine-loop-tile{sizes=4,no}", "list of integers"),
            ("legalize-dataflow{insert-copy=perhaps}", "expects true/false"),
            ("apply-design-point{unknown-knob=1}", "has no option"),
        ]:
            with pytest.raises(PassError, match=fragment):
                build_pipeline(bad)


class TestPassManagerInstrumentation:
    def test_timings_keyed_by_name_and_options(self):
        module, _ = build_simple_module()
        pm = PassManager([AffineLoopUnrollPass(unroll_factor=2),
                          AffineLoopUnrollPass(unroll_factor=8)])
        pm.run(module)
        assert "affine-loop-unroll{factor=2}" in pm.timings
        assert "affine-loop-unroll{factor=8}" in pm.timings
        assert len([k for k in pm.timings if k.startswith("affine-loop-unroll")]) == 2

    def test_collect_pass_timings_spans_managers(self):
        module, _ = build_simple_module()
        with collect_pass_timings() as collector:
            build_pipeline("canonicalize").run(module)
            build_pipeline("cse").run(module)
        assert set(collector.timings) == {"canonicalize", "cse"}
        assert "Pass execution timing report" in collector.report()

    def test_verify_failure_dumps_ir(self, tmp_path):
        from repro.ir import LambdaPass

        module, f = build_simple_module()

        def corrupt(func_op):
            # Drop use-list entries while keeping the operands: structurally
            # invalid IR that verification must flag.
            add = next(op for op in func_op.walk() if op.name == "arith.addf")
            add.drop_operand_uses()

        pm = PassManager([LambdaPass(corrupt, name="corrupt")], verify_each=True,
                         failure_dump_dir=str(tmp_path))
        with pytest.raises(PassError, match="after pass 'corrupt'") as excinfo:
            pm.run(module)
        dumps = list(tmp_path.glob("repro-after-corrupt-*.mlir"))
        assert len(dumps) == 1
        assert str(dumps[0]) in str(excinfo.value)


class TestPicklablePipelines:
    """Pipeline specs and built passes must survive pickling: the parallel
    DSE runtime ships them to worker processes instead of re-importing
    transform functions."""

    def test_pipeline_spec_pickle_round_trip_runs(self):
        from repro.ir.printer import Printer
        from repro.pipeline import compile_kernel

        spec = "canonicalize,apply-design-point{tiles=2,1,2},cse"
        passes = build_pipeline(spec).passes
        restored = pickle.loads(pickle.dumps(passes))
        assert [p.display_name for p in restored] == [p.display_name for p in passes]

        direct = compile_kernel("gemm", 8)
        shipped = compile_kernel("gemm", 8)
        PassManager(passes).run(direct.functions()[0])
        PassManager(restored).run(shipped.functions()[0])
        stable = lambda m: Printer(stable_ids=True).print(m)
        assert stable(direct) == stable(shipped)

    def test_worker_evaluation_through_pickled_context(self):
        from repro.dse.apply import kernel_pipeline_signature
        from repro.dse.runtime.worker import KernelContext, evaluate_encoded
        from repro.dse.space import KernelDesignSpace
        from repro.estimation import XC7Z020
        from repro.pipeline import compile_kernel

        module = compile_kernel("gemm", 8)
        space = KernelDesignSpace.from_function(module.functions()[0])
        context = KernelContext(module=module, func_name=None, platform=XC7Z020,
                                space=space, pipeline=kernel_pipeline_signature())
        restored = pickle.loads(pickle.dumps(context))
        encoded = (0,) * space.num_dimensions
        assert evaluate_encoded(restored, encoded) == evaluate_encoded(context, encoded)

    def test_worker_rejects_mismatched_pipeline(self):
        from repro.dse.runtime.worker import KernelContext, evaluate_encoded
        from repro.dse.space import KernelDesignSpace
        from repro.estimation import XC7Z020
        from repro.pipeline import compile_kernel

        module = compile_kernel("gemm", 8)
        space = KernelDesignSpace.from_function(module.functions()[0])
        context = KernelContext(module=module, func_name=None, platform=XC7Z020,
                                space=space, pipeline="some-other-pipeline")
        encoded = (0,) * space.num_dimensions
        with pytest.raises(PassError, match="pipeline mismatch"):
            evaluate_encoded(context, encoded)


class TestCachedBuilder:
    def test_cached_builder_returns_shared_manager(self):
        a = build_pipeline_cached("canonicalize,cse")
        b = build_pipeline_cached("canonicalize,cse")
        assert a is b
        assert build_pipeline("canonicalize,cse") is not a

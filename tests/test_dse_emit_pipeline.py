"""Tests for the DSE engine, the C++ emitter and the end-to-end pipelines."""

import numpy as np
import pytest

from repro import ir
from repro.dse import (
    DesignSpaceExplorer,
    KernelDesignPoint,
    KernelDesignSpace,
    ParetoPoint,
    apply_design_point,
    dominates,
    pareto_frontier,
)
from repro.dse.apply import estimate_baseline
from repro.dse.pareto import hypervolume, is_pareto_optimal
from repro.emit import emit_hlscpp
from repro.estimation import XC7Z020, VU9P_SLR
from repro.ir.interpreter import interpret_kernel
from repro.pipeline import (
    compile_dnn,
    compile_kernel,
    dnn_baseline,
    kernel_baseline,
    optimize_kernel,
)

from conftest import GEMM_SOURCE, compile_source, random_array, reference_gemm


class TestDesignSpace:
    def space(self, module=None):
        module = module or compile_source(GEMM_SOURCE, "gemm")
        return KernelDesignSpace.from_function(module.functions()[0]), module

    def test_dimensions_cover_all_parameters(self):
        space, _ = self.space()
        # LP, RVB, permutation, one tile dim per loop, II, cleanup pipeline.
        assert space.num_dimensions == 3 + 3 + 1 + 1
        assert space.num_points > 100
        assert "default" in space.pipeline_options

    def test_decode_produces_valid_point(self):
        space, _ = self.space()
        point = space.decode(space.random_point(__import__("random").Random(0)))
        assert isinstance(point, KernelDesignPoint)
        assert len(point.tile_sizes) == 3
        assert sorted(point.perm_map) == [0, 1, 2]

    def test_tile_product_clamped(self):
        space, _ = self.space()
        encoded = [0] * space.num_dimensions
        # Force the largest tile option in every tile dimension.
        for dim_index in range(3, 6):
            encoded[dim_index] = len(space.dimensions[dim_index]) - 1
        point = space.decode(encoded)
        product = 1
        for tile in point.tile_sizes:
            product *= tile
        assert product <= KernelDesignSpace.MAX_UNROLL_PRODUCT

    def test_neighbors_differ_in_one_dimension(self):
        space, _ = self.space()
        encoded = tuple([0] * space.num_dimensions)
        for neighbor in space.neighbors(encoded):
            differences = sum(1 for a, b in zip(encoded, neighbor) if a != b)
            assert differences == 1

    def test_neighbors_stay_in_range(self):
        space, _ = self.space()
        encoded = tuple(len(options) - 1 for options in space.dimensions)
        for neighbor in space.neighbors(encoded):
            for index, options in zip(neighbor, space.dimensions):
                assert 0 <= index < len(options)

    def test_syrk_space_includes_lp_and_rvb(self, syrk_module):
        space = KernelDesignSpace.from_function(syrk_module.functions()[0])
        assert True in space.lp_options
        assert True in space.rvb_options

    def test_encode_vector_matches_dimensionality(self):
        space, _ = self.space()
        vector = space.encode_vector([0] * space.num_dimensions)
        assert len(vector) == 2 + 3 + 3 + 1 + 1


class TestPareto:
    def test_dominates(self):
        a = ParetoPoint(10, 5, (0,))
        b = ParetoPoint(20, 7, (1,))
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_frontier_extraction(self):
        points = [ParetoPoint(10, 10, (0,)), ParetoPoint(5, 20, (1,)),
                  ParetoPoint(20, 5, (2,)), ParetoPoint(12, 12, (3,))]
        frontier = pareto_frontier(points)
        encoded = {p.encoded for p in frontier}
        assert encoded == {(0,), (1,), (2,)}

    def test_frontier_sorted_by_latency(self):
        points = [ParetoPoint(30, 1, (0,)), ParetoPoint(10, 3, (1,)), ParetoPoint(20, 2, (2,))]
        frontier = pareto_frontier(points)
        assert [p.latency for p in frontier] == [10, 20, 30]

    def test_is_pareto_optimal(self):
        points = [ParetoPoint(10, 10, (0,)), ParetoPoint(5, 20, (1,))]
        assert is_pareto_optimal(points[0], points)

    def test_hypervolume_improves_with_better_points(self):
        frontier_a = [ParetoPoint(10, 10, (0,))]
        frontier_b = [ParetoPoint(5, 5, (1,))]
        reference = (100.0, 100.0)
        assert hypervolume(frontier_b, reference) > hypervolume(frontier_a, reference)


class TestApplyAndExplore:
    def test_apply_design_point_improves_latency(self, gemm_module):
        baseline = estimate_baseline(gemm_module, XC7Z020)
        point = KernelDesignPoint(True, False, (1, 2, 0), (1, 1, 4), 1)
        design = apply_design_point(gemm_module, point, XC7Z020)
        assert design.qor.latency < baseline.latency
        assert design.achieved_ii is not None
        ir.verify(design.module)

    def test_apply_does_not_mutate_original(self, gemm_module):
        before = ir.print_op(gemm_module)
        apply_design_point(gemm_module, KernelDesignPoint(True, False, (0, 1, 2), (1, 1, 2), 1),
                           XC7Z020)
        assert ir.print_op(gemm_module) == before

    def test_applied_design_preserves_semantics(self, gemm_module):
        point = KernelDesignPoint(True, False, (1, 2, 0), (2, 1, 2), 1)
        design = apply_design_point(gemm_module, point, XC7Z020)
        C = random_array((8, 8), seed=5)
        A = random_array((8, 8), seed=6)
        B = random_array((8, 8), seed=7)
        expected = reference_gemm(1.5, 0.5, C, A, B)
        interpret_kernel(design.module, "gemm", {"C": C, "A": A, "B": B},
                         {"alpha": 1.5, "beta": 0.5})
        np.testing.assert_allclose(C, expected, rtol=1e-4)

    def test_explorer_finds_design_within_budget(self, gemm_module):
        explorer = DesignSpaceExplorer(XC7Z020, num_samples=6, max_iterations=6, seed=7)
        result = explorer.explore(gemm_module)
        assert result.best is not None
        assert result.num_evaluations >= 6
        assert result.best.qor.dsp <= XC7Z020.dsp
        assert result.frontier

    def test_explorer_beats_baseline(self, gemm_module):
        baseline = estimate_baseline(gemm_module, XC7Z020)
        explorer = DesignSpaceExplorer(XC7Z020, num_samples=6, max_iterations=6, seed=3)
        result = explorer.explore(gemm_module)
        assert result.best.qor.latency < baseline.latency

    def test_explorer_frontier_is_non_dominated(self, gemm_module):
        explorer = DesignSpaceExplorer(XC7Z020, num_samples=6, max_iterations=4, seed=1)
        result = explorer.explore(gemm_module)
        frontier = result.frontier
        for point in frontier:
            assert is_pareto_optimal(point, frontier)


class TestEmitter:
    def optimized_design(self, gemm_module):
        point = KernelDesignPoint(True, False, (1, 2, 0), (1, 1, 2), 1)
        return apply_design_point(gemm_module, point, XC7Z020)

    def test_emitted_code_structure(self, gemm_module):
        design = self.optimized_design(gemm_module)
        code = emit_hlscpp(design.module)
        assert "void gemm(" in code
        assert "#pragma HLS pipeline" in code
        assert "#pragma HLS array_partition" in code
        assert "#pragma HLS resource" in code
        assert code.count("for (") >= 2

    def test_parameter_names_preserved(self, gemm_module):
        code = emit_hlscpp(gemm_module)
        assert "float C[8][8]" in code
        assert "float alpha" in code

    def test_balanced_braces_and_parens(self, gemm_module):
        design = self.optimized_design(gemm_module)
        code = emit_hlscpp(design.module)
        assert code.count("{") == code.count("}")
        assert code.count("(") == code.count(")")

    def test_if_conditions_emitted(self, syrk_module):
        from repro.dse.apply import optimize_kernel_module

        optimized, _ = optimize_kernel_module(
            syrk_module, KernelDesignPoint(True, True, (1, 2, 0), (1, 1, 1), 1))
        code = emit_hlscpp(optimized)
        assert "if (" in code

    def test_dnn_emission_includes_dataflow(self):
        result = compile_dnn("mobilenet", graph_level=2, loop_level=1, directive_level=True)
        code = emit_hlscpp(result.module)
        assert "#pragma HLS dataflow" in code
        assert "forward_dataflow0" in code


class TestPipelines:
    def test_compile_kernel_all_names(self):
        from repro.kernels import KERNEL_NAMES

        for name in KERNEL_NAMES:
            module = compile_kernel(name, 8)
            assert module.functions()[0].get_attr("sym_name") == name

    def test_kernel_optimization_improves_baseline(self):
        module = compile_kernel("gemm", 32)
        baseline = kernel_baseline(module)
        design = optimize_kernel(module, KernelDesignPoint(True, False, (1, 2, 0), (1, 1, 8), 1))
        assert baseline.latency / design.qor.latency > 10

    def test_dnn_baseline_and_optimized_ordering(self):
        baseline = dnn_baseline("mobilenet")
        directive_only = compile_dnn("mobilenet", graph_level=0, loop_level=0,
                                     directive_level=True)
        combined = compile_dnn("mobilenet", graph_level=3, loop_level=3, directive_level=True)
        assert directive_only.qor.interval < baseline.qor.interval
        assert combined.qor.interval < directive_only.qor.interval

    def test_dnn_graph_level_controls_stage_count(self):
        coarse = compile_dnn("mobilenet", graph_level=1, loop_level=1, directive_level=True)
        fine = compile_dnn("mobilenet", graph_level=4, loop_level=1, directive_level=True)
        assert fine.num_dataflow_stages >= coarse.num_dataflow_stages

    def test_dnn_result_reports_runtime_and_efficiency(self):
        result = compile_dnn("mobilenet", graph_level=2, loop_level=2, directive_level=True)
        assert result.runtime_seconds > 0
        assert result.dsp_efficiency > 0
        assert result.flops > 1e7

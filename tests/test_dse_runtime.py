"""Tests for the parallel DSE runtime: determinism across worker counts,
estimate-cache accounting and persistence, checkpoint round-trips, and the
multi-kernel scheduler."""

import pickle

import pytest

from repro.dse import KernelDesignSpace
from repro.dse.apply import apply_design_point
from repro.dse.runtime import (
    CheckpointStore,
    EstimateCache,
    EvaluationRecord,
    ExplorerState,
    MultiKernelScheduler,
    ParallelExplorer,
)
from repro.estimation import XC7Z020

from conftest import GEMM_SOURCE, SYRK_SOURCE, compile_source


def frontier_signature(result):
    """Byte-comparable rendering of a frontier (encoded point + objectives)."""
    return repr([(p.encoded, p.latency, p.area) for p in result.frontier])


def small_explorer(**overrides):
    config = dict(platform=XC7Z020, num_samples=6, max_iterations=8, seed=11,
                  jobs=1, batch_size=4)
    config.update(overrides)
    return ParallelExplorer(**config)


@pytest.fixture
def gemm_module():
    return compile_source(GEMM_SOURCE, "gemm")


class TestPicklability:
    def test_applied_design_and_record_roundtrip(self, gemm_module):
        space = KernelDesignSpace.from_function(gemm_module.functions()[0])
        encoded = tuple(0 for _ in range(space.num_dimensions))
        design = apply_design_point(gemm_module, space.decode(encoded), XC7Z020)
        revived = pickle.loads(pickle.dumps(design))
        assert revived.qor.latency == design.qor.latency
        assert revived.point == design.point

        record = EvaluationRecord.from_design(encoded, design)
        assert pickle.loads(pickle.dumps(record)) == record

    def test_record_json_roundtrip(self, gemm_module):
        space = KernelDesignSpace.from_function(gemm_module.functions()[0])
        encoded = tuple(0 for _ in range(space.num_dimensions))
        design = apply_design_point(gemm_module, space.decode(encoded), XC7Z020)
        record = EvaluationRecord.from_design(encoded, design)
        assert EvaluationRecord.from_json_dict(record.to_json_dict()) == record


class TestFingerprint:
    def test_stable_across_compilations(self):
        space_a = KernelDesignSpace.from_function(
            compile_source(GEMM_SOURCE, "gemm").functions()[0])
        space_b = KernelDesignSpace.from_function(
            compile_source(GEMM_SOURCE, "gemm").functions()[0])
        assert space_a.fingerprint() == space_b.fingerprint()

    def test_differs_between_kernels(self):
        gemm_space = KernelDesignSpace.from_function(
            compile_source(GEMM_SOURCE, "gemm").functions()[0])
        syrk_space = KernelDesignSpace.from_function(
            compile_source(SYRK_SOURCE, "syrk").functions()[0])
        assert gemm_space.fingerprint() != syrk_space.fingerprint()

    def test_covers_dimension_options(self):
        direct = KernelDesignSpace([8, 8, 8], False, False)
        wider = KernelDesignSpace([8, 8, 8], False, False, max_target_ii=16)
        assert direct.fingerprint() != wider.fingerprint()


class TestDeterminism:
    def test_one_vs_four_workers_identical_frontier(self, gemm_module):
        serial = small_explorer(jobs=1).explore(gemm_module)
        parallel = small_explorer(jobs=4).explore(gemm_module)
        assert frontier_signature(serial) == frontier_signature(parallel)
        assert serial.best_record == parallel.best_record
        assert set(serial.records) == set(parallel.records)

    def test_repeated_runs_identical(self, gemm_module):
        first = small_explorer().explore(gemm_module)
        second = small_explorer().explore(gemm_module)
        assert frontier_signature(first) == frontier_signature(second)

    def test_warm_cache_does_not_change_frontier(self, gemm_module):
        cache = EstimateCache()
        explorer = small_explorer(cache=cache)
        cold = explorer.explore(gemm_module)
        warm = explorer.explore(gemm_module)
        assert frontier_signature(cold) == frontier_signature(warm)

    def test_frontier_is_non_dominated(self, gemm_module):
        from repro.dse.pareto import is_pareto_optimal

        result = small_explorer(jobs=2).explore(gemm_module)
        for point in result.frontier:
            assert is_pareto_optimal(point, result.frontier)


class TestEstimateCache:
    def test_hit_miss_accounting(self, gemm_module):
        cache = EstimateCache()
        explorer = small_explorer(cache=cache)
        cold = explorer.explore(gemm_module)
        assert cold.cache_hits == 0
        assert cold.cache_misses == cold.num_evaluations
        assert cold.evaluated_this_run == cold.num_evaluations

        warm = explorer.explore(gemm_module)
        assert warm.cache_misses == 0
        assert warm.cache_hits == warm.num_evaluations
        assert warm.evaluated_this_run == 0
        assert cache.stats.hit_rate >= 0.5  # half of all lookups were warm

    def test_persistence_roundtrip(self, gemm_module, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cold = small_explorer(cache=EstimateCache(path)).explore(gemm_module)

        revived = EstimateCache(path)
        assert revived.stats.loaded == cold.num_evaluations
        warm = small_explorer(cache=revived).explore(gemm_module)
        assert warm.cache_hits == warm.num_evaluations
        assert warm.cache_misses == 0
        assert frontier_signature(warm) == frontier_signature(cold)

    def test_corrupt_tail_line_tolerated(self, gemm_module, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        small_explorer(cache=EstimateCache(path)).explore(gemm_module)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "truncated...\n')
        revived = EstimateCache(path)
        assert revived.stats.loaded > 0

    def test_stale_model_version_entries_ignored(self, gemm_module, tmp_path):
        import json

        path = str(tmp_path / "cache.jsonl")
        small_explorer(cache=EstimateCache(path)).explore(gemm_module)
        # Rewrite every line as if estimated under an older QoR model.
        lines = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                data = json.loads(line)
                data["model"] = -1
                lines.append(json.dumps(data))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        revived = EstimateCache(path)
        assert revived.stats.loaded == 0  # stale entries discarded, not reused

    def test_warm_run_spawns_no_workers(self, gemm_module):
        cache = EstimateCache()
        small_explorer(cache=cache).explore(gemm_module)
        # A fully warm run must never create a process pool (jobs=4 would
        # fork workers eagerly if the backend were not lazy).
        import repro.dse.runtime.worker as worker

        def boom(*args, **kwargs):
            raise AssertionError("backend created during a fully warm run")

        original = worker.create_backend
        import repro.dse.runtime.parallel as parallel
        parallel.create_backend, worker.create_backend = boom, boom
        try:
            warm = small_explorer(cache=cache, jobs=4).explore(gemm_module)
        finally:
            parallel.create_backend, worker.create_backend = original, original
        assert warm.evaluated_this_run == 0

    def test_keys_are_per_kernel(self, gemm_module):
        cache = EstimateCache()
        small_explorer(cache=cache).explore(gemm_module)
        syrk = compile_source(SYRK_SOURCE, "syrk")
        result = small_explorer(cache=cache).explore(syrk)
        assert result.cache_hits == 0  # different fingerprint, no collisions

    def test_direct_space_does_not_collide_across_kernels(self, gemm_module):
        # Two kernels with identically *shaped* spaces (same trip counts and
        # options) but different IR must not share cache entries when the
        # caller passes a directly constructed KernelDesignSpace.
        transposed = compile_source(GEMM_SOURCE.replace("B[k][j]", "B[j][k]"),
                                    "gemm")
        space_a = KernelDesignSpace([8, 8, 8], False, False)
        space_b = KernelDesignSpace([8, 8, 8], False, False)
        assert space_a.fingerprint() == space_b.fingerprint()  # shape only
        cache = EstimateCache()
        small_explorer(cache=cache).explore(gemm_module, space=space_a)
        result = small_explorer(cache=cache).explore(transposed, space=space_b)
        assert result.cache_hits == 0  # runtime mixed the IR digest back in

    def test_line_missing_fingerprint_tolerated(self, gemm_module, tmp_path):
        import json

        path = str(tmp_path / "cache.jsonl")
        explorer = small_explorer(cache=EstimateCache(path))
        cold = explorer.explore(gemm_module)
        with open(path, "r", encoding="utf-8") as handle:
            first = json.loads(handle.readline())
        del first["fingerprint"]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(first) + "\n")
        revived = EstimateCache(path)  # must not raise
        assert revived.stats.loaded == cold.num_evaluations


class TestCheckpoint:
    def test_state_json_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "state.json"))
        state = ExplorerState.fresh("fp", seed=5)
        rng = state.make_rng()
        rng.random()
        state.capture_rng(rng)
        state.samples_done = True
        state.iterations_done = 3
        store.save(state)

        loaded = store.load(expected_fingerprint="fp")
        assert loaded is not None
        assert loaded.samples_done and loaded.iterations_done == 3
        assert loaded.make_rng().random() == state.make_rng().random()

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "state.json"))
        store.save(ExplorerState.fresh("fp", seed=5))
        assert store.load(expected_fingerprint="other") is None

    def test_interrupted_resume_matches_uninterrupted(self, gemm_module, tmp_path):
        checkpoint = str(tmp_path / "explore.ckpt.json")
        config = dict(num_samples=6, max_iterations=12, seed=11, batch_size=4)

        full = small_explorer(**config).explore(gemm_module)

        # Simulate a kill after ~10 evaluations (enforced at batch boundaries),
        # then resume from the checkpoint with the full budget.
        partial = small_explorer(**config, checkpoint_path=checkpoint,
                                 checkpoint_every=2,
                                 max_evaluations=10).explore(gemm_module)
        assert partial.num_evaluations < full.num_evaluations

        resumed = small_explorer(**config, checkpoint_path=checkpoint) \
            .explore(gemm_module, resume=True)
        assert frontier_signature(resumed) == frontier_signature(full)
        assert set(resumed.records) == set(full.records)

    def test_resume_skips_completed_work(self, gemm_module, tmp_path):
        checkpoint = str(tmp_path / "explore.ckpt.json")
        explorer = small_explorer(checkpoint_path=checkpoint, checkpoint_every=2)
        explorer.explore(gemm_module)
        rerun = small_explorer(checkpoint_path=checkpoint) \
            .explore(gemm_module, resume=True)
        assert rerun.evaluated_this_run == 0  # everything restored from disk

    def test_resume_with_different_config_starts_fresh(self, gemm_module, tmp_path):
        checkpoint = str(tmp_path / "explore.ckpt.json")
        small_explorer(seed=11, checkpoint_path=checkpoint,
                       checkpoint_every=2, max_evaluations=8).explore(gemm_module)
        # Resuming under a different seed must NOT continue the seed-11
        # trajectory — it starts a fresh seed-12 run.
        resumed = small_explorer(seed=12, checkpoint_path=checkpoint) \
            .explore(gemm_module, resume=True)
        fresh = small_explorer(seed=12).explore(gemm_module)
        assert frontier_signature(resumed) == frontier_signature(fresh)

    def test_resume_without_checkpoint_starts_fresh(self, gemm_module, tmp_path):
        checkpoint = str(tmp_path / "missing.ckpt.json")
        result = small_explorer(checkpoint_path=checkpoint) \
            .explore(gemm_module, resume=True)
        assert result.num_evaluations > 0


class TestMultiKernelScheduler:
    def two_kernel_module(self):
        return compile_source(GEMM_SOURCE + SYRK_SOURCE, "pair")

    def scheduler(self, jobs, **overrides):
        config = dict(platform=XC7Z020, num_samples=4, max_iterations=6,
                      seed=3, batch_size=4)
        config.update(overrides)
        return MultiKernelScheduler(jobs=jobs, **config)

    def test_explores_every_function(self):
        results = self.scheduler(jobs=1).explore_module(self.two_kernel_module())
        assert set(results) == {"gemm", "syrk"}
        for result in results.values():
            assert result.best_record is not None
            assert result.frontier

    def test_concurrent_matches_serial(self):
        serial = self.scheduler(jobs=1).explore_module(self.two_kernel_module())
        concurrent = self.scheduler(jobs=2).explore_module(self.two_kernel_module())
        for name in serial:
            assert frontier_signature(serial[name]) \
                == frontier_signature(concurrent[name])

    def test_shared_cache_across_runs(self):
        cache = EstimateCache()
        module = self.two_kernel_module()
        self.scheduler(jobs=1, cache=cache).explore_module(module)
        warm = self.scheduler(jobs=1, cache=cache).explore_module(module)
        for result in warm.values():
            assert result.cache_misses == 0
            assert result.cache_hits == result.num_evaluations

    def test_function_subset_and_unknown_name(self):
        module = self.two_kernel_module()
        results = self.scheduler(jobs=1).explore_module(module, func_names=["gemm"])
        assert set(results) == {"gemm"}
        with pytest.raises(ValueError):
            self.scheduler(jobs=1).explore_module(module, func_names=["nope"])


class TestResultMaterialization:
    def test_best_design_matches_record(self, gemm_module):
        result = small_explorer().explore(gemm_module)
        design = result.best_design()
        assert design.qor.latency == result.best_record.qor.latency
        assert design.point == result.best_record.point

    def test_emission_of_materialized_design(self, gemm_module):
        from repro.emit import emit_hlscpp

        result = small_explorer().explore(gemm_module)
        code = emit_hlscpp(result.best_design().module)
        assert "void gemm(" in code

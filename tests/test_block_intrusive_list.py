"""Property-style tests of the intrusive linked Block representation.

Random mutation sequences are applied simultaneously to a linked Block and
to a plain-list reference model; after every step both must agree on
iteration order, length, positional indices and pairwise ordering.  This
pins the linked representation to the semantics of the seed's plain-list
storage.
"""

import pickle
import random

import pytest

from repro.ir import Block, Builder, InsertionPoint, ModuleOp, Operation, verify
from repro.ir.block import _ORDER_STRIDE


def _op(tag: int) -> Operation:
    return Operation("t.op", attributes={"tag": tag})


def _assert_same(block: Block, reference: list) -> None:
    actual = list(block.operations)
    assert len(block) == len(reference)
    assert [id(op) for op in actual] == [id(op) for op in reference]
    if reference:
        assert block.first_op is reference[0]
        assert block.last_op is reference[-1]
        assert block.operations[0] is reference[0]
        assert block.operations[-1] is reference[-1]
    else:
        assert block.first_op is None and block.last_op is None
        assert block.empty()


class TestRandomizedMutations:
    @pytest.mark.parametrize("seed", range(8))
    def test_block_matches_list_model(self, seed):
        rng = random.Random(seed)
        block = Block()
        reference: list[Operation] = []
        counter = 0

        def fresh():
            nonlocal counter
            counter += 1
            return _op(counter)

        for step in range(300):
            choice = rng.random()
            if choice < 0.22 or not reference:
                op = fresh()
                block.append(op)
                reference.append(op)
            elif choice < 0.32:
                op = fresh()
                block.prepend(op)
                reference.insert(0, op)
            elif choice < 0.44:
                position = rng.randrange(len(reference) + 1)
                op = fresh()
                block.insert(position, op)
                reference.insert(position, op)
            elif choice < 0.56:
                anchor = reference[rng.randrange(len(reference))]
                op = fresh()
                if rng.random() < 0.5:
                    block.insert_before(anchor, op)
                    reference.insert(reference.index(anchor), op)
                else:
                    block.insert_after(anchor, op)
                    reference.insert(reference.index(anchor) + 1, op)
            elif choice < 0.68:
                op = reference[rng.randrange(len(reference))]
                if rng.random() < 0.5:
                    block.remove(op)
                else:
                    op.detach()
                reference.remove(op)
            elif choice < 0.78 and len(reference) >= 2:
                mover = reference[rng.randrange(len(reference))]
                anchor = reference[rng.randrange(len(reference))]
                if mover is anchor:
                    continue
                reference.remove(mover)
                if rng.random() < 0.5:
                    mover.move_before(anchor)
                    reference.insert(reference.index(anchor), mover)
                else:
                    mover.move_after(anchor)
                    reference.insert(reference.index(anchor) + 1, mover)
            elif choice < 0.88:
                position = rng.randrange(len(reference) + 1)
                batch = [fresh() for _ in range(rng.randrange(1, 5))]
                block.insert_all(position, batch)
                reference[position:position] = batch
            else:
                anchor = reference[rng.randrange(len(reference))]
                batch = [fresh() for _ in range(rng.randrange(1, 4))]
                if rng.random() < 0.5:
                    block.insert_all_after(anchor, batch)
                    reference[reference.index(anchor) + 1:
                              reference.index(anchor) + 1] = batch
                else:
                    block.insert_all_before(anchor, batch)
                    reference[reference.index(anchor):
                              reference.index(anchor)] = batch

            _assert_same(block, reference)
            if reference and step % 10 == 0:
                probe = reference[rng.randrange(len(reference))]
                assert block.index_of(probe) == reference.index(probe)
                other = reference[rng.randrange(len(reference))]
                if probe is not other:
                    assert probe.is_before_in_block(other) == (
                        reference.index(probe) < reference.index(other))

    def test_reappend_moves_to_end(self):
        block = Block()
        first = block.append(_op(1))
        block.append(_op(2))
        block.append(first)  # re-appending an owned op moves it
        assert [op.get_attr("tag") for op in block.operations] == [2, 1]
        assert len(block) == 2

    def test_positional_insert_moves_within_block_like_a_list(self):
        # Seed semantics: the op is removed first, so the index refers to
        # positions after removal ([A,B,C].insert(2, A) -> [B,C,A]).
        block = Block()
        a, b, c = (block.append(_op(i)) for i in range(3))
        block.insert(2, a)
        assert list(block.operations) == [b, c, a]

    def test_block_iteration_snapshots(self):
        # `for op in block` must visit every op even when the loop body
        # erases ops ahead of the cursor (the seed's list-copy semantics).
        block = Block()
        ops = [block.append(_op(i)) for i in range(5)]
        visited = []
        for op in block:
            visited.append(op)
            if op is ops[1]:
                block.remove(ops[2])
        assert visited == ops


class TestOrderKeys:
    def test_same_gap_insertion_burst_stays_correct(self):
        """Hammering one gap exhausts the order keys; ordering must survive."""
        block = Block()
        left = block.append(_op(0))
        right = block.append(_op(1))
        inserted = []
        for i in range(200):  # far beyond the ~20-insert gap capacity
            op = _op(2 + i)
            block.insert_after(left, op)
            inserted.append(op)
        assert list(block.operations) == [left, *reversed(inserted), right]
        assert left.is_before_in_block(right)
        assert inserted[-1].is_before_in_block(inserted[0])
        assert not right.is_before_in_block(left)

    def test_order_keys_monotone_after_renumber(self):
        block = Block()
        anchor = block.append(_op(0))
        block.append(_op(1))
        for i in range(64):
            block.insert_after(anchor, _op(2 + i))
        block.ensure_order()
        orders = [op._order for op in block.operations]
        assert orders == sorted(orders)
        assert len(set(orders)) == len(orders)

    def test_appends_never_invalidate(self):
        block = Block()
        for i in range(100):
            block.append(_op(i))
            block.prepend(_op(1000 + i))
        assert block._order_valid

    def test_stride_gap_is_large(self):
        # The renumber stride must leave room for midpoint insertion.
        assert _ORDER_STRIDE >= 1 << 10


class TestViewSemantics:
    def _block(self, count=5):
        block = Block()
        ops = [block.append(_op(i)) for i in range(count)]
        return block, ops

    def test_indexing_and_slices(self):
        block, ops = self._block()
        assert block.operations[0] is ops[0]
        assert block.operations[4] is ops[4]
        assert block.operations[-2] is ops[-2]
        assert block.operations[1:3] == ops[1:3]
        assert block.operations[:-1] == ops[:-1]
        with pytest.raises(IndexError):
            block.operations[5]

    def test_reversed_contains_bool(self):
        block, ops = self._block()
        assert list(reversed(block.operations)) == list(reversed(ops))
        assert ops[2] in block.operations
        assert _op(99) not in block.operations
        assert bool(block.operations)
        assert not bool(Block().operations)

    def test_iteration_survives_detaching_current(self):
        block, ops = self._block()
        visited = []
        for op in block.operations:
            visited.append(op)
            op.detach()
        assert visited == ops
        assert block.empty()


class TestInsertionPoints:
    def test_before_and_after_are_anchor_based(self):
        block = Block()
        a = block.append(_op(1))
        c = block.append(_op(3))
        builder = Builder(InsertionPoint.before(c))
        b = builder.insert(_op(2))
        assert list(block.operations) == [a, b, c]
        builder = Builder(InsertionPoint.after(c))
        d = builder.insert(_op(4))
        assert list(block.operations) == [a, b, c, d]

    def test_consecutive_inserts_keep_order(self):
        block = Block()
        anchor = block.append(_op(0))
        builder = Builder(InsertionPoint.before(anchor))
        first = builder.insert(_op(1))
        second = builder.insert(_op(2))
        assert list(block.operations) == [first, second, anchor]

    def test_at_start_tracks_true_block_start(self):
        # The start anchor resolves at first insert: ops appended between
        # creating the point and using it must not displace it (the old
        # index-0 semantics).
        block = Block()
        point = InsertionPoint.at_start(block)
        x = block.append(_op(1))
        y = point.insert(_op(2))
        z = point.insert(_op(3))
        assert list(block.operations) == [y, z, x]

    def test_at_start_on_empty_block_keeps_tracking_front(self):
        # First insert into an empty block must not degrade the point to
        # "at end": later external appends stay behind the point's inserts.
        block = Block()
        point = InsertionPoint.at_start(block)
        a = point.insert(_op(1))
        x = block.append(_op(9))
        b = point.insert(_op(2))
        assert list(block.operations) == [a, b, x]

    def test_failed_splice_leaves_no_half_taken_ops(self):
        block = Block()
        a = block.append(_op(1))
        b = block.append(_op(2))
        other = Block()
        c = other.append(_op(3))
        with pytest.raises(ValueError):
            block.insert_all_after(b, [c, b])  # b is its own anchor
        assert c.parent is other  # c must not have been detached
        assert list(other.operations) == [c]
        assert list(block.operations) == [a, b]

    def test_after_point_stays_pinned_to_anchor(self):
        # Ops appended behind the anchor between creating the point and
        # using it must not displace it (the old index+1 semantics).
        block = Block()
        a = block.append(_op(1))
        point = InsertionPoint.after(a)
        y = block.append(_op(9))
        b = point.insert(_op(2))
        c = point.insert(_op(3))
        assert list(block.operations) == [a, b, c, y]

    def test_point_follows_moved_anchor(self):
        block_a, block_b = Block(), Block()
        anchor = block_a.append(_op(0))
        point = InsertionPoint.before(anchor)
        block_b.append(anchor)  # anchor moves to another block
        inserted = point.insert(_op(1))
        assert inserted.parent is block_b
        assert list(block_b.operations) == [inserted, anchor]


class TestPickling:
    def test_round_trip_preserves_order_and_links(self):
        block = Block()
        ops = [block.append(_op(i)) for i in range(10)]
        anchor = ops[5]
        for i in range(5):
            block.insert_before(anchor, _op(100 + i))
        expected = [op.get_attr("tag") for op in block.operations]
        restored = pickle.loads(pickle.dumps(block))
        assert [op.get_attr("tag") for op in restored.operations] == expected
        assert all(op.parent is restored for op in restored.operations)
        restored_ops = list(restored.operations)
        assert restored_ops[0].is_before_in_block(restored_ops[-1])

    def test_deep_block_does_not_exhaust_recursion(self):
        """Pickling must not recurse once per linked op (5k >> stack limit)."""
        block = Block()
        for i in range(5000):
            block.append(_op(i))
        restored = pickle.loads(pickle.dumps(block))
        assert len(restored) == 5000
        assert [op.get_attr("tag") for op in restored.operations] == list(range(5000))

    def test_module_round_trip_verifies(self, gemm_module):
        restored = pickle.loads(pickle.dumps(gemm_module))
        verify(restored)
        from repro.ir import print_op

        assert print_op(restored, stable_ids=True) == \
            print_op(gemm_module, stable_ids=True)


class TestErrors:
    def test_remove_foreign_op_raises(self):
        block = Block()
        foreign = _op(1)
        with pytest.raises(ValueError):
            block.remove(foreign)

    def test_insert_before_foreign_anchor_raises(self):
        block = Block()
        foreign = _op(1)
        with pytest.raises(ValueError):
            block.insert_before(foreign, _op(2))

    def test_insert_relative_to_itself_raises(self):
        block = Block()
        a = block.append(_op(1))
        x = block.append(_op(2))
        for method in (block.insert_before, block.insert_after):
            with pytest.raises(ValueError):
                method(x, x)
        # The list must stay intact after the rejected calls.
        assert list(block.operations) == [a, x]

    def test_index_of_foreign_op_raises(self):
        block = Block()
        with pytest.raises(ValueError):
            block.index_of(_op(1))

    def test_is_before_requires_same_block(self):
        block_a, block_b = Block(), Block()
        a = block_a.append(_op(1))
        b = block_b.append(_op(2))
        with pytest.raises(ValueError):
            a.is_before_in_block(b)

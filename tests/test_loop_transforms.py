"""Tests for the loop-level transform passes (perfectization, RVB, order, tiling, unroll)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ir
from repro.dialects.affine_ops import (
    AffineForOp,
    loop_band_from,
    outermost_loops,
    perfect_loop_band,
)
from repro.ir.interpreter import interpret_kernel
from repro.ir.pass_manager import PassError
from repro.transforms import (
    canonicalize,
    fully_unroll,
    optimize_loop_order,
    perfectize_band,
    permute_loop_band,
    remove_variable_bounds,
    tile_loop_band,
    unroll_loop,
)
from repro.transforms.loop.loop_order_opt import compute_permutation
from repro.transforms.loop.loop_unroll import fully_unroll_nested

from conftest import (
    GEMM_SOURCE,
    SYRK_SOURCE,
    compile_source,
    random_array,
    reference_gemm,
    reference_syrk,
)


def run_syrk(module, seed=0, alpha=1.5, beta=0.5):
    C = random_array((16, 16), seed=seed)
    A = random_array((16, 8), seed=seed + 1)
    expected = reference_syrk(alpha, beta, C, A)
    interpret_kernel(module, "syrk", {"C": C, "A": A}, {"alpha": alpha, "beta": beta})
    return C, expected


def run_gemm(module, seed=0, alpha=2.0, beta=0.5):
    C = random_array((8, 8), seed=seed)
    A = random_array((8, 8), seed=seed + 1)
    B = random_array((8, 8), seed=seed + 2)
    expected = reference_gemm(alpha, beta, C, A, B)
    interpret_kernel(module, "gemm", {"C": C, "A": A, "B": B},
                     {"alpha": alpha, "beta": beta})
    return C, expected


class TestPerfectization:
    def test_syrk_becomes_perfect(self, syrk_module):
        f = syrk_module.functions()[0]
        outer = outermost_loops(f)[0]
        assert len(perfect_loop_band(outer)) == 2
        assert perfectize_band(outer)
        assert len(perfect_loop_band(outer)) == 3
        ir.verify(syrk_module)

    def test_gemm_becomes_perfect(self, gemm_module):
        f = gemm_module.functions()[0]
        outer = outermost_loops(f)[0]
        perfectize_band(outer)
        assert len(perfect_loop_band(outer)) == 3

    def test_already_perfect_band_unchanged(self):
        module = compile_source("""
        void copy(float A[8][8], float B[8][8]) {
          for (int i = 0; i < 8; i++) {
            for (int j = 0; j < 8; j++) {
              B[i][j] = A[i][j];
            }
          }
        }""", "copy")
        outer = outermost_loops(module.functions()[0])[0]
        assert not perfectize_band(outer)

    def test_guard_uses_boundary_iteration(self, syrk_module):
        f = syrk_module.functions()[0]
        perfectize_band(outermost_loops(f)[0])
        guards = [op for op in f.walk() if op.name == "affine.if"]
        assert guards, "perfectization should introduce a first-iteration guard"

    def test_semantics_preserved(self, syrk_module):
        perfectize_band(outermost_loops(syrk_module.functions()[0])[0])
        ir.verify(syrk_module)
        C, expected = run_syrk(syrk_module, seed=20)
        np.testing.assert_allclose(C, expected, rtol=1e-5)


class TestRemoveVariableBound:
    def test_bounds_become_constant(self, syrk_module):
        f = syrk_module.functions()[0]
        perfectize_band(outermost_loops(f)[0])
        changed = remove_variable_bounds(f)
        assert changed == 1
        band = perfect_loop_band(outermost_loops(f)[0])
        assert all(loop.has_constant_bounds() for loop in band)
        assert band[1].constant_upper_bound == 16

    def test_band_stays_perfect(self, syrk_module):
        f = syrk_module.functions()[0]
        perfectize_band(outermost_loops(f)[0])
        remove_variable_bounds(f)
        assert len(perfect_loop_band(outermost_loops(f)[0])) == 3

    def test_trmm_lower_bound(self):
        from repro.kernels import kernel_source

        module = compile_source(kernel_source("trmm", 8), "trmm")
        f = module.functions()[0]
        perfectize_band(outermost_loops(f)[0])
        assert remove_variable_bounds(f) == 1
        for loop in f.walk():
            if isinstance(loop, AffineForOp):
                assert loop.has_constant_bounds()

    def test_constant_loops_untouched(self, gemm_module):
        assert remove_variable_bounds(gemm_module.functions()[0]) == 0

    def test_semantics_preserved(self, syrk_module):
        f = syrk_module.functions()[0]
        perfectize_band(outermost_loops(f)[0])
        remove_variable_bounds(f)
        ir.verify(syrk_module)
        C, expected = run_syrk(syrk_module, seed=30)
        np.testing.assert_allclose(C, expected, rtol=1e-5)


class TestLoopOrderOptimization:
    def prepared_band(self, module):
        f = module.functions()[0]
        perfectize_band(outermost_loops(f)[0])
        remove_variable_bounds(f)
        return perfect_loop_band(outermost_loops(f)[0])

    def test_syrk_permutation_matches_paper(self, syrk_module):
        """The paper's Table III reports perm map [1, 2, 0] for SYRK."""
        band = self.prepared_band(syrk_module)
        assert compute_permutation(band) == [1, 2, 0]

    def test_gemm_permutation_moves_reduction_out(self, gemm_module):
        band = self.prepared_band(gemm_module)
        assert compute_permutation(band) == [1, 2, 0]

    def test_explicit_permutation_applied(self, gemm_module):
        band = self.prepared_band(gemm_module)
        trips_before = [loop.trip_count() for loop in band]
        new_band = permute_loop_band(band, [2, 0, 1])
        assert [loop.trip_count() for loop in new_band] == [
            trips_before[1], trips_before[2], trips_before[0]]
        ir.verify(gemm_module)

    def test_identity_permutation_is_noop(self, gemm_module):
        band = self.prepared_band(gemm_module)
        assert permute_loop_band(band, [0, 1, 2]) == band

    def test_invalid_permutation_rejected(self, gemm_module):
        band = self.prepared_band(gemm_module)
        with pytest.raises(PassError):
            permute_loop_band(band, [0, 0, 1])

    def test_semantics_preserved(self, syrk_module):
        band = self.prepared_band(syrk_module)
        optimize_loop_order(band)
        ir.verify(syrk_module)
        C, expected = run_syrk(syrk_module, seed=40)
        np.testing.assert_allclose(C, expected, rtol=1e-5)

    def test_gemm_semantics_preserved_for_every_permutation(self, gemm_module):
        import itertools

        for permutation in itertools.permutations(range(3)):
            module = compile_source(GEMM_SOURCE, "gemm")
            f = module.functions()[0]
            perfectize_band(outermost_loops(f)[0])
            band = perfect_loop_band(outermost_loops(f)[0])
            permute_loop_band(band, list(permutation))
            C, expected = run_gemm(module, seed=sum(permutation))
            np.testing.assert_allclose(C, expected, rtol=1e-4)


class TestLoopTiling:
    def prepared_band(self, module):
        f = module.functions()[0]
        perfectize_band(outermost_loops(f)[0])
        remove_variable_bounds(f)
        return perfect_loop_band(outermost_loops(f)[0])

    def test_tile_structure(self, gemm_module):
        band = self.prepared_band(gemm_module)
        tile_loops, point_loops = tile_loop_band(band, [2, 4, 1])
        assert [loop.step for loop in tile_loops] == [2, 4, 1]
        assert [loop.trip_count() for loop in point_loops] == [2, 4]
        ir.verify(gemm_module)

    def test_tile_size_one_everywhere_keeps_band(self, gemm_module):
        band = self.prepared_band(gemm_module)
        tile_loops, point_loops = tile_loop_band(band, [1, 1, 1])
        assert point_loops == []
        assert len(tile_loops) == 3

    def test_tile_size_clamped_to_divisor(self, gemm_module):
        band = self.prepared_band(gemm_module)
        tile_loops, point_loops = tile_loop_band(band, [3, 1, 1])
        # 3 does not divide 8 -> reduced to 2.
        assert tile_loops[0].step == 2

    def test_requires_perfect_band(self, syrk_module):
        f = syrk_module.functions()[0]
        band = loop_band_from(outermost_loops(f)[0])
        with pytest.raises(PassError):
            tile_loop_band(band, [1] * len(band))

    def test_requires_constant_bounds(self, syrk_module):
        f = syrk_module.functions()[0]
        perfectize_band(outermost_loops(f)[0])
        band = perfect_loop_band(outermost_loops(f)[0])
        with pytest.raises(PassError):
            tile_loop_band(band, [1, 2, 1])

    def test_wrong_number_of_sizes(self, gemm_module):
        band = self.prepared_band(gemm_module)
        with pytest.raises(PassError):
            tile_loop_band(band, [2])

    def test_semantics_preserved(self, gemm_module):
        band = self.prepared_band(gemm_module)
        tile_loop_band(band, [2, 1, 4])
        ir.verify(gemm_module)
        C, expected = run_gemm(gemm_module, seed=50)
        np.testing.assert_allclose(C, expected, rtol=1e-4)

    @settings(max_examples=10, deadline=None)
    @given(st.tuples(st.sampled_from([1, 2, 4, 8]), st.sampled_from([1, 2, 4, 8]),
                     st.sampled_from([1, 2, 4, 8])))
    def test_any_power_of_two_tiling_preserves_gemm(self, sizes):
        module = compile_source(GEMM_SOURCE, "gemm")
        f = module.functions()[0]
        perfectize_band(outermost_loops(f)[0])
        band = perfect_loop_band(outermost_loops(f)[0])
        tile_loop_band(band, list(sizes))
        C, expected = run_gemm(module, seed=60)
        np.testing.assert_allclose(C, expected, rtol=1e-4)


class TestLoopUnroll:
    def test_full_unroll_removes_loop(self):
        module = compile_source("""
        void scale(float A[4]) {
          for (int i = 0; i < 4; i++) { A[i] *= 2.0; }
        }""", "scale")
        f = module.functions()[0]
        loop = outermost_loops(f)[0]
        fully_unroll(loop)
        ir.verify(module)
        assert not any(op.name == "affine.for" for op in f.walk())
        assert len([op for op in f.walk() if op.name == "affine.store"]) == 4

    def test_full_unroll_semantics(self):
        module = compile_source("""
        void scale(float A[4]) {
          for (int i = 0; i < 4; i++) { A[i] *= 2.0; }
        }""", "scale")
        fully_unroll(outermost_loops(module.functions()[0])[0])
        A = random_array((4,), seed=7)
        expected = A * 2.0
        interpret_kernel(module, "scale", {"A": A})
        np.testing.assert_allclose(A, expected, rtol=1e-6)

    def test_partial_unroll_multiplies_step(self):
        module = compile_source("""
        void scale(float A[8]) {
          for (int i = 0; i < 8; i++) { A[i] *= 2.0; }
        }""", "scale")
        loop = outermost_loops(module.functions()[0])[0]
        assert unroll_loop(loop, 4) is None
        assert loop.step == 4
        assert len([op for op in loop.body.operations if op.name == "affine.store"]) == 4

    def test_partial_unroll_semantics(self):
        module = compile_source("""
        void scale(float A[8]) {
          for (int i = 0; i < 8; i++) { A[i] = A[i] + 1.0; }
        }""", "scale")
        unroll_loop(outermost_loops(module.functions()[0])[0], 2)
        ir.verify(module)
        A = random_array((8,), seed=8)
        expected = A + 1.0
        interpret_kernel(module, "scale", {"A": A})
        np.testing.assert_allclose(A, expected, rtol=1e-6)

    def test_factor_not_dividing_trip_reduced(self):
        module = compile_source("""
        void scale(float A[6]) {
          for (int i = 0; i < 6; i++) { A[i] *= 2.0; }
        }""", "scale")
        loop = outermost_loops(module.functions()[0])[0]
        unroll_loop(loop, 4)  # reduced to 3
        assert loop.step == 3

    def test_unroll_factor_one_is_noop(self, gemm_module):
        loop = outermost_loops(gemm_module.functions()[0])[0]
        assert unroll_loop(loop, 1) is None
        assert loop.step == 1

    def test_variable_bound_rejected(self, syrk_module):
        f = syrk_module.functions()[0]
        loops = [op for op in f.walk() if isinstance(op, AffineForOp)
                 and not op.has_constant_bounds()]
        with pytest.raises(PassError):
            unroll_loop(loops[0], 2)

    def test_fully_unroll_nested(self, gemm_module):
        f = gemm_module.functions()[0]
        outer = outermost_loops(f)[0]
        unrolled = fully_unroll_nested(outer)
        assert unrolled == 2
        assert not any(isinstance(op, AffineForOp) for op in outer.walk() if op is not outer)
        C, expected = run_gemm(gemm_module, seed=70)
        np.testing.assert_allclose(C, expected, rtol=1e-4)


class TestCombinedKernelFlow:
    def test_full_syrk_flow_matches_reference(self, syrk_module):
        """Perfectize + RVB + permute + tile + cleanup keeps SYRK's semantics."""
        from repro.transforms import (
            eliminate_common_subexpressions,
            forward_stores,
            simplify_affine_ifs,
            simplify_memref_accesses,
        )

        f = syrk_module.functions()[0]
        perfectize_band(outermost_loops(f)[0])
        remove_variable_bounds(f)
        band = perfect_loop_band(outermost_loops(f)[0])
        band = optimize_loop_order(band)
        tile_loop_band(band, [1, 2, 2])
        canonicalize(f)
        simplify_affine_ifs(f)
        forward_stores(f)
        simplify_memref_accesses(f)
        eliminate_common_subexpressions(f)
        canonicalize(f)
        ir.verify(syrk_module)
        C, expected = run_syrk(syrk_module, seed=80)
        np.testing.assert_allclose(C, expected, rtol=1e-5)

"""Tests for the unified tracing + metrics subsystem (``repro.obs``)."""

import json
import time

import pytest

from repro import obs
from repro.obs import NULL_SPAN
from repro.obs.export import (
    chrome_trace_document,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import MetricsRegistry, pattern_counter_deltas
from repro.obs.report import (
    format_timing_report,
    pass_timings_of,
    pattern_stats_of,
    render_metrics_report,
    render_run_summary,
)
from repro.obs.tracer import Tracer
from repro.tools.driver import main


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test starts and ends with observability disabled."""
    obs.stop()
    yield
    obs.stop()


class TestNullPath:
    def test_span_returns_shared_null_singleton(self):
        assert obs.active() is None
        assert obs.span("anything") is NULL_SPAN
        assert obs.span("other", key="value") is NULL_SPAN

    def test_null_span_is_inert_context_manager(self):
        with obs.span("nothing") as span:
            span.set(key=1)
        obs.counter("x")
        obs.gauge("y", 1)
        obs.observe("z", 1)
        obs.series("s", 0, 1)

    def test_disabled_span_overhead_is_tiny(self):
        # The disabled hook is a global load + None check; a very generous
        # per-call bound documents that it cannot dominate a rewrite storm.
        n = 50_000
        started = time.perf_counter()
        for _ in range(n):
            obs.span("hot")
        per_call = (time.perf_counter() - started) / n
        assert per_call < 5e-6


class TestTracer:
    def test_spans_nest_by_track_local_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = tracer.tracks()["main"]
        assert [(s.name, s.depth) for s in spans] == [("inner", 1), ("outer", 0)]

    def test_span_closes_and_records_error_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("will_fail"):
                raise ValueError("boom")
        (span,) = tracer.tracks()["main"]
        assert span.args["error"] == "ValueError: boom"

    def test_track_routing_and_depth_reset(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.use_track("side"):
                with tracer.span("routed"):
                    pass
        assert tracer.tracks()["side"][0].depth == 0  # depth is track-local
        assert tracer.tracks()["main"][0].name == "root"

    def test_absorb_appends_groups_at_cursor(self):
        local = Tracer()
        with local.span("work"):
            pass
        telemetry = obs.ObsSession(local, MetricsRegistry()).to_telemetry()
        coordinator = Tracer()
        coordinator.absorb("worker:k", telemetry)
        coordinator.absorb("worker:k", telemetry)
        spans = coordinator.tracks()["worker:k"]
        assert len(spans) == 2
        assert spans[1].start >= spans[0].start  # second group after cursor


class TestCaptureTask:
    def test_capture_returns_result_and_telemetry(self):
        result, telemetry = obs.capture_task(lambda x: x * 2, 21)
        assert result == 42
        names = [row[0] for row in telemetry.spans]
        assert "dse.evaluate" in names
        assert obs.active() is None  # previous (no) session restored

    def test_capture_restores_session_on_error(self):
        session = obs.start()
        with pytest.raises(RuntimeError):
            obs.capture_task(lambda: (_ for _ in ()).throw(RuntimeError("x")))
        assert obs.active() is session

    def test_absorb_task_merges_counters_and_busy_time(self):
        def work():
            obs.counter("estimate.calls")
            return 1

        _, telemetry = obs.capture_task(work)
        session = obs.start()
        obs.absorb_task("worker:k", telemetry)
        assert session.metrics.counter("estimate.calls") == 1
        assert session.metrics.counter("dse.worker.busy_seconds") > 0
        assert "worker:k" in session.tracer.tracks()


class TestMetricsRegistry:
    def test_counters_gauges_histograms_series(self):
        registry = MetricsRegistry()
        registry.counter_add("c", 2)
        registry.counter_add("c", 3)
        registry.gauge_set("g", 7)
        registry.observe("h", 1)
        registry.observe("h", 5)
        registry.series_append("s", 0, 10)
        registry.series_append("s", 4, 12)
        doc = registry.to_json_dict()
        assert doc["counters"]["c"] == 5
        assert doc["gauges"]["g"] == 7
        assert doc["histograms"]["h"] == {"count": 2, "total": 6,
                                          "min": 1, "max": 5}
        assert doc["series"]["s"] == [[0, 10], [4, 12]]

    def test_integer_valued_floats_export_as_ints(self):
        registry = MetricsRegistry()
        registry.counter_add("c", 2.0)
        assert registry.to_json_dict()["counters"]["c"] == 2

    def test_pattern_counter_deltas_round_trip(self):
        deltas = pattern_counter_deltas({"fold": (3, 1)}, {"arith.addi": (2, 5)})
        patterns, buckets = pattern_stats_of(deltas)
        assert patterns == {"fold": (3, 1)}
        assert buckets == {"arith.addi": (2, 5)}


class TestReports:
    def test_timing_report_breaks_ties_by_name(self):
        report = format_timing_report({"b-pass": 0.5, "a-pass": 0.5,
                                       "c-pass": 1.0})
        lines = [line.split()[-1] for line in report.splitlines()[1:-1]]
        assert lines == ["c-pass", "a-pass", "b-pass"]

    def test_pass_timings_extracted_from_counters(self):
        counters = {"pass.seconds.canonicalize": 0.25, "other": 1}
        assert pass_timings_of(counters) == {"canonicalize": 0.25}

    def test_render_metrics_report_sections(self):
        metrics = {
            "counters": {"pass.seconds.cse": 0.1, "pattern.fold.hits": 2,
                         "pattern.fold.misses": 1, "cache.hits": 3,
                         "cache.misses": 1, "dse.points": 8,
                         "dse.evaluations": 5},
            "gauges": {"dse.wall_seconds": 2.0, "dse.jobs": 2,
                       "dse.node.k.iterations_done": 4,
                       "dse.node.k.iterations_budget": 8,
                       "dse.node.k.samples_budget": 3},
            "series": {"dse.frontier.size.k": [[0, 1], [4, 3]]},
        }
        report = render_metrics_report(metrics)
        assert "Pass execution timing report" in report
        assert "Rewrite pattern statistics" in report
        assert "hit rate=75.0%" in report
        assert "node k: iterations 4/8 (samples budget 3)" in report
        assert "frontier[k]: 3 points after 4 iterations" in report

    def test_render_run_summary_empty_without_dse_metrics(self):
        assert render_run_summary({"counters": {}}) == ""


class TestExport:
    def _traced_session(self):
        session = obs.start()
        with obs.span("outer", kind="test"):
            with obs.span("inner"):
                pass
        with obs.track("worker:k"):
            with obs.span("task"):
                pass
        return session

    def test_chrome_trace_is_valid_and_nested(self):
        session = self._traced_session()
        document = chrome_trace_document(session.tracer)
        assert validate_chrome_trace(document) == []
        names = {event["args"]["name"] for event in document["traceEvents"]
                 if event.get("ph") == "M" and event["name"] == "thread_name"}
        assert names == {"main", "worker:k"}
        spans = {event["name"] for event in document["traceEvents"]
                 if event.get("ph") == "X"}
        assert spans == {"outer", "inner", "task"}

    def test_child_interval_contained_in_parent(self):
        session = self._traced_session()
        events = {event["name"]: event
                  for event in chrome_trace_document(session.tracer)["traceEvents"]
                  if event.get("ph") == "X"}
        outer, inner = events["outer"], events["inner"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_validator_rejects_partial_overlap(self):
        document = {"traceEvents": [
            {"ph": "X", "name": "a", "ts": 0, "dur": 10, "pid": 1, "tid": 1},
            {"ph": "X", "name": "b", "ts": 5, "dur": 10, "pid": 1, "tid": 1},
        ]}
        problems = validate_chrome_trace(document)
        assert problems and "partially overlaps" in problems[0]

    def test_validator_rejects_bad_structure(self):
        assert validate_chrome_trace({"events": []})
        assert validate_chrome_trace({"traceEvents": [{"ph": "B", "name": "x"}]})

    def test_write_files(self, tmp_path):
        session = self._traced_session()
        session.metrics.counter_add("c", 1)
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        write_chrome_trace(str(trace_path), session.tracer)
        write_metrics_json(str(metrics_path), session.metrics)
        assert validate_chrome_trace(json.loads(trace_path.read_text())) == []
        assert json.loads(metrics_path.read_text())["counters"]["c"] == 1


def _trace_skeleton(path):
    """(track, span name) sequence — the timestamp-free shape of a trace."""
    document = json.loads(path.read_text())
    track_names = {event["tid"]: event["args"]["name"]
                   for event in document["traceEvents"]
                   if event.get("ph") == "M" and event["name"] == "thread_name"}
    return [(track_names[event["tid"]], event["name"])
            for event in document["traceEvents"] if event.get("ph") == "X"]


class TestEndToEndDeterminism:
    """The acceptance contract: traced runs at any --jobs produce the same
    trace skeleton and byte-identical frontiers (tracing on or off)."""

    BASE = ["dnn", "mobilenet", "--dse", "--smoke"]

    def _run(self, tmp_path, tag, jobs, traced):
        frontier = tmp_path / f"frontier-{tag}.json"
        argv = self.BASE + ["--jobs", str(jobs),
                            "--frontier-out", str(frontier)]
        if traced:
            argv += ["--trace-out", str(tmp_path / f"trace-{tag}.json"),
                     "--metrics-out", str(tmp_path / f"metrics-{tag}.json")]
        assert main(argv) == 0
        return frontier

    def test_frontier_and_trace_deterministic(self, tmp_path, capsys):
        frontier_j1 = self._run(tmp_path, "j1", jobs=1, traced=True)
        frontier_j2 = self._run(tmp_path, "j2", jobs=2, traced=True)
        frontier_off = self._run(tmp_path, "off", jobs=2, traced=False)
        capsys.readouterr()

        # Frontier JSON: byte-identical across --jobs and tracing on/off.
        assert frontier_j1.read_bytes() == frontier_j2.read_bytes()
        assert frontier_j1.read_bytes() == frontier_off.read_bytes()

        # Trace: valid Chrome trace with coordinator AND worker spans, and
        # the same skeleton at --jobs 1 and 2.
        trace_j2 = json.loads((tmp_path / "trace-j2.json").read_text())
        assert validate_chrome_trace(trace_j2) == []
        skeleton_j1 = _trace_skeleton(tmp_path / "trace-j1.json")
        skeleton_j2 = _trace_skeleton(tmp_path / "trace-j2.json")
        assert skeleton_j1 == skeleton_j2
        tracks = {track for track, _ in skeleton_j2}
        assert any(track.startswith("dse:") for track in tracks)
        assert any(track.startswith("worker:") for track in tracks)

        # Metrics: deterministic modulo wall-clock (and the jobs gauge).
        # dse.prefix.{hits,misses} are excluded too: prefix-snapshot caches
        # are per-worker, so their warmth depends on how the pool spread the
        # batch — every evaluated record is still identical.  Fault-handling
        # counters (dse.faults.*, dse.pool.*) are execution detail by the
        # same argument: retries and pool respawns vary with scheduling even
        # though every final record is identical.
        def deterministic_part(path):
            doc = json.loads(path.read_text())
            counters = {name: value
                        for name, value in doc["counters"].items()
                        if "seconds" not in name
                        and not name.startswith("dse.prefix.")
                        and not name.startswith("dse.faults.")
                        and not name.startswith("dse.pool.")}
            gauges = {name: value for name, value in doc["gauges"].items()
                      if "seconds" not in name and name != "dse.jobs"}
            return counters, gauges, doc["series"], doc["histograms"]

        assert deterministic_part(tmp_path / "metrics-j1.json") \
            == deterministic_part(tmp_path / "metrics-j2.json")


class TestDriverIntegration:
    def test_print_pass_timing_uses_registry(self, capsys):
        assert main(["compile", "--kernel", "gemm", "--size", "8",
                     "--print-pass-timing"]) == 0
        output = capsys.readouterr().out
        assert "Pass execution timing report" in output
        assert "Rewrite pattern statistics" in output

    def test_trace_and_metrics_out_on_compile(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        assert main(["compile", "--kernel", "gemm", "--size", "8",
                     "--trace-out", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        assert validate_chrome_trace(json.loads(trace.read_text())) == []
        doc = json.loads(metrics.read_text())
        assert any(name.startswith("pass.seconds.")
                   for name in doc["counters"])

    def test_dse_prints_run_summary(self, capsys, tmp_path):
        assert main(["dse", "--kernel", "gemm", "--size", "8",
                     "--samples", "3", "--iterations", "2",
                     "--cache", str(tmp_path / "cache.jsonl")]) == 0
        output = capsys.readouterr().out
        assert "DSE run summary" in output
        assert "Estimate cache" in output
        assert "hit rate=" in output

    def test_report_subcommand(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        assert main(["dse", "--kernel", "gemm", "--size", "8",
                     "--samples", "3", "--iterations", "2",
                     "--trace-out", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["report", str(metrics), "--trace", str(trace)]) == 0
        output = capsys.readouterr().out
        assert "DSE run summary" in output
        assert "trace OK" in output

    def test_report_rejects_invalid_trace(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        metrics.write_text(json.dumps({"counters": {}}))
        bad_trace = tmp_path / "bad.json"
        bad_trace.write_text(json.dumps({"traceEvents": [
            {"ph": "X", "name": "a", "ts": 0, "dur": 10, "pid": 1, "tid": 1},
            {"ph": "X", "name": "b", "ts": 5, "dur": 10, "pid": 1, "tid": 1},
        ]}))
        assert main(["report", str(metrics), "--trace", str(bad_trace)]) == 1
        assert "partially overlaps" in capsys.readouterr().err

"""Tests for the IR core: types, values, operations, blocks, regions, cloning."""

import pytest

from repro import ir
from repro.dialects import arith, func, memref
from repro.dialects.affine_ops import AffineForOp, AffineStoreOp
from repro.ir import (
    Block,
    Builder,
    FunctionType,
    InsertionPoint,
    IntegerType,
    MemRefType,
    ModuleOp,
    Operation,
    TensorType,
    VerificationError,
    f32,
    i32,
    index,
    verify,
)


class TestTypes:
    def test_float_equality(self):
        assert ir.FloatType(32) == f32
        assert ir.FloatType(64) != f32

    def test_integer_width_validation(self):
        with pytest.raises(ValueError):
            IntegerType(0)

    def test_float_width_validation(self):
        with pytest.raises(ValueError):
            ir.FloatType(12)

    def test_index_singleton_equality(self):
        assert ir.IndexType() == index

    def test_function_type(self):
        ft = FunctionType([f32, i32], [f32])
        assert ft.inputs == (f32, i32)
        assert ft.results == (f32,)

    def test_tensor_type(self):
        tensor = TensorType((1, 3, 32, 32), f32)
        assert tensor.rank == 4
        assert tensor.num_elements == 3 * 32 * 32

    def test_shaped_type_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            TensorType((0, 3), f32)

    def test_memref_ports(self):
        memref_type = MemRefType((4, 4), f32)
        assert memref_type.ports_per_bank == 2

    def test_memref_hashable(self):
        assert hash(MemRefType((4,), f32)) == hash(MemRefType((4,), f32))

    def test_types_usable_as_dict_keys(self):
        mapping = {f32: "float", i32: "int"}
        assert mapping[ir.FloatType(32)] == "float"


class TestValuesAndUses:
    def test_op_result_use_list(self):
        constant = arith.ConstantOp(1.0, f32)
        add = arith.AddFOp(constant.result(), constant.result())
        assert constant.result().num_uses() == 2
        assert add in constant.result().users

    def test_replace_all_uses_with(self):
        a = arith.ConstantOp(1.0, f32)
        b = arith.ConstantOp(2.0, f32)
        add = arith.AddFOp(a.result(), a.result())
        a.result().replace_all_uses_with(b.result())
        assert a.result().num_uses() == 0
        assert add.operand(0) is b.result()
        assert add.operand(1) is b.result()

    def test_set_operand_updates_uses(self):
        a = arith.ConstantOp(1.0, f32)
        b = arith.ConstantOp(2.0, f32)
        add = arith.AddFOp(a.result(), a.result())
        add.set_operand(1, b.result())
        assert a.result().num_uses() == 1
        assert b.result().num_uses() == 1

    def test_erase_refuses_used_op(self):
        a = arith.ConstantOp(1.0, f32)
        arith.AddFOp(a.result(), a.result())
        with pytest.raises(ValueError):
            a.erase()

    def test_block_argument_owner(self):
        block = Block([index])
        assert block.arguments[0].owner is block

    def test_erase_block_argument_with_uses_rejected(self):
        block = Block([index])
        block.append(arith.AddIOp(block.arguments[0], block.arguments[0]))
        with pytest.raises(ValueError):
            block.erase_argument(0)


class TestOperations:
    def test_generic_operation(self):
        op = Operation("test.op", result_types=[f32], attributes={"key": 1})
        assert op.dialect == "test"
        assert op.get_attr("key") == 1
        assert op.num_results == 1

    def test_operand_type_check(self):
        with pytest.raises(TypeError):
            Operation("test.op", operands=[42])

    def test_attribute_helpers(self):
        op = Operation("test.op")
        op.set_attr("a", 1)
        assert op.has_attr("a")
        op.remove_attr("a")
        assert not op.has_attr("a")

    def test_parent_links(self):
        module = ModuleOp("m")
        f = func.build_function(module, "f", [f32])
        constant = arith.ConstantOp(0.0, f32)
        f.body.append(constant)
        assert constant.parent_op is f
        assert constant.parent_of_type("builtin.module") is module
        assert module.is_ancestor_of(constant)

    def test_is_before_in_block(self):
        block = Block()
        first = block.append(arith.ConstantOp(1.0, f32))
        second = block.append(arith.ConstantOp(2.0, f32))
        assert first.is_before_in_block(second)
        assert not second.is_before_in_block(first)

    def test_move_before_and_after(self):
        block = Block()
        first = block.append(arith.ConstantOp(1.0, f32))
        second = block.append(arith.ConstantOp(2.0, f32))
        second.move_before(first)
        assert block.operations[0] is second
        second.move_after(first)
        assert block.operations[1] is second

    def test_walk_traverses_nested_regions(self):
        loop = AffineForOp.constant_bounds(0, 4)
        inner = AffineForOp.constant_bounds(0, 2)
        loop.body.append(inner)
        names = [op.name for op in loop.walk()]
        assert names.count("affine.for") == 2

    def test_walk_post_order_children_first(self):
        loop = AffineForOp.constant_bounds(0, 4)
        constant = arith.ConstantOp(1.0, f32)
        loop.body.append(constant)
        ordered = list(loop.walk_post_order())
        assert ordered.index(constant) < ordered.index(loop)

    def test_detach_keeps_op_alive(self):
        block = Block()
        op = block.append(arith.ConstantOp(1.0, f32))
        op.detach()
        assert op.parent is None
        assert len(block) == 0


class TestCloning:
    def test_clone_is_deep(self):
        loop = AffineForOp.constant_bounds(0, 8)
        builder = Builder()
        builder.set_insertion_point_to_end(loop.body)
        constant = builder.insert(arith.ConstantOp(1.0, f32))
        clone = loop.clone()
        assert clone is not loop
        assert len(clone.body.operations) == 1
        assert clone.body.operations[0] is not constant

    def test_clone_remaps_internal_values(self):
        loop = AffineForOp.constant_bounds(0, 8)
        builder = Builder()
        builder.set_insertion_point_to_end(loop.body)
        a = builder.insert(arith.ConstantOp(1.0, f32))
        builder.insert(arith.AddFOp(a.result(), a.result()))
        clone = loop.clone()
        cloned_add = clone.body.operations[1]
        assert cloned_add.operand(0) is clone.body.operations[0].result()

    def test_clone_preserves_class_and_attrs(self):
        loop = AffineForOp.constant_bounds(2, 10, 2)
        clone = loop.clone()
        assert isinstance(clone, AffineForOp)
        assert clone.constant_lower_bound == 2
        assert clone.step == 2

    def test_clone_module_keeps_function_count(self):
        module = ModuleOp("m")
        func.build_function(module, "a", [f32])
        func.build_function(module, "b", [f32])
        clone = module.clone()
        assert len(clone.functions()) == 2

    def test_clone_with_external_value_map(self):
        block = Block([f32])
        add = arith.AddFOp(block.arguments[0], block.arguments[0])
        replacement_block = Block([f32])
        clone = add.clone({block.arguments[0]: replacement_block.arguments[0]})
        assert clone.operand(0) is replacement_block.arguments[0]


class TestBlocksAndRegions:
    def test_insert_all_splices_in_order(self):
        block = Block()
        anchor = block.append(arith.ConstantOp(0.0, f32))
        ops = [arith.ConstantOp(float(i), f32) for i in range(3)]
        block.insert_all(1, ops)
        assert [op.get_attr("value") for op in block.operations[1:]] == [0.0, 1.0, 2.0]
        assert all(op.parent is block for op in ops)
        assert block.operations[0] is anchor

    def test_insert_before_after(self):
        block = Block()
        first = block.append(arith.ConstantOp(1.0, f32))
        second = arith.ConstantOp(2.0, f32)
        block.insert_before(first, second)
        assert block.index_of(second) == 0
        third = arith.ConstantOp(3.0, f32)
        block.insert_after(first, third)
        assert block.index_of(third) == 2

    def test_region_front_back(self):
        module = ModuleOp("m")
        region = module.region(0)
        assert region.front is region.back

    def test_empty_region_front_raises(self):
        op = Operation("test.op", num_regions=1)
        with pytest.raises(IndexError):
            op.region(0).front


class TestModuleAndBuilder:
    def test_module_lookup(self):
        module = ModuleOp("m")
        f = func.build_function(module, "kernel", [f32])
        assert module.lookup("kernel") is f
        assert module.lookup("missing") is None

    def test_builder_insertion_points(self):
        block = Block()
        builder = Builder(InsertionPoint.at_end(block))
        first = builder.insert(arith.ConstantOp(1.0, f32))
        builder.set_insertion_point_before(first)
        second = builder.insert(arith.ConstantOp(2.0, f32))
        assert block.operations[0] is second

    def test_builder_context_manager_restores_point(self):
        block_a, block_b = Block(), Block()
        builder = Builder(InsertionPoint.at_end(block_a))
        with builder.at_end(block_b):
            builder.insert(arith.ConstantOp(1.0, f32))
        builder.insert(arith.ConstantOp(2.0, f32))
        assert len(block_a) == 1 and len(block_b) == 1

    def test_builder_without_point_raises(self):
        with pytest.raises(RuntimeError):
            Builder().insert(arith.ConstantOp(1.0, f32))


class TestVerifier:
    def test_valid_module_verifies(self):
        module = ModuleOp("m")
        f = func.build_function(module, "f", [MemRefType((4,), f32)])
        builder = Builder(InsertionPoint.at_end(f.body))
        c = builder.insert(arith.ConstantOp(0, index))
        v = builder.insert(arith.ConstantOp(1.0, f32))
        builder.insert(memref.StoreOp(v.result(), f.arguments[0], [c.result()]))
        builder.insert(func.ReturnOp())
        verify(module)

    def test_use_before_def_detected(self):
        module = ModuleOp("m")
        f = func.build_function(module, "f", [])
        late = arith.ConstantOp(1.0, f32)
        early = arith.AddFOp(late.result(), late.result())
        f.body.append(early)
        f.body.append(late)
        with pytest.raises(VerificationError):
            verify(module)

    def test_stale_parent_detected(self):
        module = ModuleOp("m")
        f = func.build_function(module, "f", [])
        orphan = arith.ConstantOp(1.0, f32)
        f.body.append(orphan)
        orphan.parent = Block()  # corrupt the link on purpose
        with pytest.raises(VerificationError):
            verify(module)

    def test_nested_use_of_later_defined_value_detected(self):
        # A region nested mid-block must not see values defined after its
        # enclosing op; the order-key dominance walk has to catch this.
        module = ModuleOp("m")
        f = func.build_function(module, "f", [])
        late = arith.ConstantOp(1.0, f32)
        wrapper = Operation("test.wrap", num_regions=1)
        inner = wrapper.region(0).add_block(Block())
        inner.append(arith.AddFOp(late.result(), late.result()))
        f.body.append(wrapper)
        f.body.append(late)
        with pytest.raises(VerificationError, match="before its definition"):
            verify(module, require_terminators=False)


class TestDefinedAbove:
    def nested_function(self):
        """A function with a wrapper op whose region uses outer values."""
        module = ModuleOp("m")
        f = func.build_function(module, "f", [f32])
        builder = Builder(InsertionPoint.at_end(f.body))
        before = builder.insert(arith.ConstantOp(1.0, f32))
        wrapper = builder.insert(Operation("test.wrap", num_regions=1))
        inner = wrapper.region(0).add_block(Block())
        inner_op = arith.AddFOp(before.result(), before.result())
        inner.append(inner_op)
        after = builder.insert(arith.ConstantOp(2.0, f32))
        builder.insert(func.ReturnOp())
        return f, inner, before, after, inner_op

    def test_matches_values_defined_above(self):
        from repro.ir.traversal import is_defined_above, values_defined_above

        f, inner, *_ = self.nested_function()
        visible = values_defined_above(inner)
        candidates = list(f.arguments)
        for op in f.walk():
            candidates.extend(op.results)
        assert visible  # the set form sees the argument and `before`
        for value in candidates:
            assert is_defined_above(value, inner) == (value in visible), value

    def test_later_definitions_are_not_above(self):
        from repro.ir.traversal import is_defined_above

        _, inner, before, after, inner_op = self.nested_function()
        assert is_defined_above(before.result(), inner)
        assert not is_defined_above(after.result(), inner)
        assert not is_defined_above(inner_op.result(), inner)  # same block


class TestPrinter:
    def test_printed_module_mentions_ops(self, gemm_module):
        text = ir.print_op(gemm_module)
        assert "affine.for" in text
        assert "func.func" in text
        assert "arith.mulf" in text

    def test_printer_numbers_results(self):
        block = Block()
        block.append(arith.ConstantOp(1.0, f32))
        text = ir.Printer().print(block.operations[0])
        assert text.startswith("%0 = ")

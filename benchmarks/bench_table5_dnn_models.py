"""Table V: optimization results of representative DNN models.

For ResNet-18, VGG-16 and MobileNet (CIFAR-10 input shapes) the benchmark
compiles the model with the multi-level optimization (graph + loop +
directive), sweeping a small set of optimization levels and keeping the
fastest configuration that fits one SLR of a VU9P, then reports the Table V
columns: speedup over the non-optimized lowering, compilation runtime,
memory / DSP / LUT utilization, and DSP efficiency compared with TVM-VTA.
"""

import pytest

from conftest import PAPER_TABLE5, format_row
from repro.estimation import VU9P_SLR
from repro.frontend.models import build_model
from repro.pipeline import compile_dnn, dnn_baseline

MODELS = ("resnet18", "vgg16", "mobilenet")

#: (graph_level, loop_level) configurations swept per model, coarse to fine.
CONFIGURATIONS = ((3, 3), (4, 4), (5, 4))


@pytest.mark.parametrize("model", MODELS)
def test_table5_dnn_model(benchmark, model, print_header):
    model_module = build_model(model)

    def run():
        baseline = dnn_baseline(model, model_module=model_module)
        best = None
        for graph_level, loop_level in CONFIGURATIONS:
            candidate = compile_dnn(model, graph_level=graph_level, loop_level=loop_level,
                                    directive_level=True, model_module=model_module)
            # Memory is not part of the feasibility check (see the note below
            # about on-chip weights); DSPs and LUTs are.
            fits = VU9P_SLR.fits(candidate.qor.resources, memory_margin=float("inf"))
            if fits and (best is None or candidate.qor.interval < best.qor.interval):
                best = candidate
        if best is None:
            best = compile_dnn(model, graph_level=3, loop_level=2, directive_level=True,
                               model_module=model_module)
        return baseline, best

    baseline, best = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = baseline.qor.interval / best.qor.interval
    utilization = VU9P_SLR.utilization(best.qor.resources)
    paper = PAPER_TABLE5[model]

    print_header(f"Table V — {model} on one VU9P SLR")
    widths = (26, 22, 22)
    print(format_row(("metric", "paper", "measured"), widths))
    print(format_row(("speedup", f"{paper['speedup']:.1f}x", f"{speedup:.1f}x"), widths))
    print(format_row(("compile runtime", f"{paper['runtime_s']:.1f} s",
                      f"{best.runtime_seconds:.1f} s"), widths))
    print(format_row(("memory", f"{paper['memory_mb']:.1f} Mb",
                      f"{best.qor.memory_bits / 1e6:.1f} Mb"), widths))
    print(format_row(("DSPs", f"{paper['dsp']} ", f"{best.qor.dsp} "), widths))
    print(format_row(("LUTs", f"{paper['lut']} ", f"{best.qor.lut} "), widths))
    print(format_row(("DSP efficiency", f"{paper['dsp_eff']:.3f}",
                      f"{best.dsp_efficiency:.3f}"), widths))
    print(format_row(("TVM-VTA DSP efficiency", f"{paper['vta_dsp_eff']:.3f}", "-"), widths))
    print(f"dataflow stages: {best.num_dataflow_stages}")

    # Shape checks: orders-of-magnitude speedup, compute resources within the
    # SLR.  Memory is reported but not asserted: our lowering keeps every
    # weight on-chip (8-bit), whereas the paper's designs stream part of the
    # weights, so VGG-16's on-chip footprint can exceed one SLR here.
    assert speedup > 50.0
    assert best.qor.dsp <= VU9P_SLR.dsp

    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["paper_speedup"] = paper["speedup"]
    benchmark.extra_info["dsp"] = best.qor.dsp
    benchmark.extra_info["dsp_efficiency"] = round(best.dsp_efficiency, 3)

"""Table IV: case study of the GEMM kernel with a problem size of 4096.

Reproduces the four rows of the paper's Table IV:

* **Unoptimized** — the kernel as written, no directives.
* **DSE Optimized** — the design selected by the automated DSE engine.
* **Manually Optimized** — a hand-written directive recipe (the permutation /
  tiling / II a designer would reasonably pick without the DSE).
* **Theoretical Bound** — all DSPs performing multiply-accumulates every
  cycle with no stalls.
"""

from conftest import PAPER_TABLE4, format_row, run_kernel_dse
from repro.dse.apply import apply_design_point, estimate_baseline
from repro.dse.space import KernelDesignPoint
from repro.estimation import XC7Z020
from repro.pipeline import compile_kernel

PROBLEM_SIZE = 4096

#: A plausible human-written design: permute the reduction loop outwards,
#: tile modestly, pipeline with II=2 (designers rarely push II=1 by hand).
MANUAL_POINT = KernelDesignPoint(
    loop_perfectization=True,
    remove_variable_bound=False,
    perm_map=(1, 2, 0),
    tile_sizes=(4, 1, 8),
    target_ii=2,
)


def theoretical_bound_cycles(problem_size: int, dsp_budget: int) -> float:
    """All DSPs busy on MACs every cycle (5 DSPs per multiply-accumulate)."""
    macs = problem_size ** 3
    macs_per_cycle = dsp_budget / 5.0
    return macs / macs_per_cycle


def test_table4_gemm_case_study(benchmark, print_header):
    module = compile_kernel("gemm", PROBLEM_SIZE)

    def run():
        baseline = estimate_baseline(module, XC7Z020)
        _, _, dse_result = run_kernel_dse("gemm", PROBLEM_SIZE,
                                          num_samples=14, max_iterations=24)
        manual = apply_design_point(module, MANUAL_POINT, XC7Z020)
        return baseline, dse_result, manual

    baseline, dse_result, manual = benchmark.pedantic(run, rounds=1, iterations=1)
    dse_best = dse_result.best
    bound = theoretical_bound_cycles(PROBLEM_SIZE, XC7Z020.dsp)

    rows = {
        "Unoptimized": (baseline.latency, 1.0, baseline.dsp),
        "DSE Optimized": (dse_best.qor.latency, baseline.latency / dse_best.qor.latency,
                          dse_best.qor.dsp),
        "Manually Optimized": (manual.qor.latency, baseline.latency / manual.qor.latency,
                               manual.qor.dsp),
        "Theoretical Bound": (bound, baseline.latency / bound, XC7Z020.dsp),
    }

    print_header(f"Table IV — GEMM case study (problem size {PROBLEM_SIZE}, XC7Z020)")
    widths = (22, 26, 26, 22)
    print(format_row(("design", "cycles (paper / ours)", "speedup (paper / ours)",
                      "DSP (paper / ours)"), widths))
    for name, (cycles, speedup, dsp) in rows.items():
        paper_cycles, paper_speedup, paper_dsp = PAPER_TABLE4[name]
        print(format_row((
            name,
            f"{paper_cycles:.2e} / {cycles:.2e}",
            f"{paper_speedup:.1f}x / {speedup:.1f}x",
            f"{paper_dsp} / {dsp}",
        ), widths))

    # Shape checks: the DSE result sits between the manual design and the bound.
    assert rows["DSE Optimized"][0] < rows["Unoptimized"][0]
    assert rows["DSE Optimized"][1] >= rows["Manually Optimized"][1] * 0.8
    assert rows["DSE Optimized"][0] >= bound * 0.5
    assert rows["Unoptimized"][2] <= 20

    benchmark.extra_info["dse_speedup"] = round(rows["DSE Optimized"][1], 1)
    benchmark.extra_info["manual_speedup"] = round(rows["Manually Optimized"][1], 1)
    benchmark.extra_info["bound_speedup"] = round(rows["Theoretical Bound"][1], 1)

"""Figure 8: ablation study of the DNN optimization levels.

The paper quantifies the contribution of each optimization level by compiling
the DNN models with directive-only (D), loop + directive (Ln + D) and graph +
loop + directive (Gn + Ln + D) configurations, where larger n means larger
unrolling factors / finer dataflow granularity.  The benchmark reproduces the
ablation with a representative subset of the levels and checks the ordering
the paper reports: D < L + D < G + L + D, with the speedup growing with n.
"""

import pytest

from conftest import PAPER_FIG8_AVERAGE, format_row
from repro.frontend.models import build_model
from repro.pipeline import compile_dnn, dnn_baseline

MODELS = ("resnet18", "vgg16", "mobilenet")

#: (label, graph_level, loop_level, directive) configurations, coarse to fine.
CONFIGURATIONS = (
    ("D", 0, 0, True),
    ("L1+D", 0, 1, True),
    ("L3+D", 0, 3, True),
    ("L5+D", 0, 5, True),
    ("G1+L5+D", 1, 5, True),
    ("G3+L5+D", 3, 5, True),
    ("G5+L5+D", 5, 5, True),
)


@pytest.mark.parametrize("model", MODELS)
def test_fig8_ablation(benchmark, model, print_header):
    model_module = build_model(model)

    def run():
        baseline = dnn_baseline(model, model_module=model_module)
        speedups = {}
        for label, graph_level, loop_level, directive in CONFIGURATIONS:
            result = compile_dnn(model, graph_level=graph_level, loop_level=loop_level,
                                 directive_level=directive, model_module=model_module)
            speedups[label] = (baseline.qor.interval / result.qor.interval, result.qor.dsp)
        return speedups

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(f"Figure 8 — ablation of {model} (speedup over the unoptimized lowering)")
    widths = (12, 16, 10)
    print(format_row(("config", "speedup", "DSP"), widths))
    for label, (speedup, dsp) in speedups.items():
        print(format_row((label, f"{speedup:.1f}x", dsp), widths))
    print(f"\npaper's average contributions: D {PAPER_FIG8_AVERAGE['directive']}x, "
          f"L7 {PAPER_FIG8_AVERAGE['loop_l7']}x, G7 {PAPER_FIG8_AVERAGE['graph_g7']}x")

    # Shape checks reproduced from the paper's ablation:
    # directive-only helps, loop optimization multiplies the gain, larger loop
    # levels help more, and adding the graph level on top helps again.
    assert speedups["D"][0] > 1.0
    assert speedups["L3+D"][0] > speedups["L1+D"][0]
    assert speedups["L5+D"][0] > speedups["D"][0] * 5
    assert speedups["G5+L5+D"][0] > speedups["L5+D"][0]
    assert speedups["G5+L5+D"][0] > speedups["G1+L5+D"][0]

    benchmark.extra_info["speedups"] = {label: round(value[0], 1)
                                        for label, value in speedups.items()}

"""Table III: automated DSE results on the six PolyBench kernels.

Regenerates the paper's Table III — for every kernel (problem size 4096,
target XC7Z020): the speedup of the DSE-selected design over the unoptimized
baseline, together with the transform parameters the DSE selected (loop
perfectization, variable-bound removal, permutation, tile sizes, pipeline II
and the derived array-partition factors).
"""

import pytest

from conftest import PAPER_TABLE3_SPEEDUP, format_row, run_kernel_dse
from repro.kernels import KERNEL_NAMES

PROBLEM_SIZE = 4096


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_table3_kernel_dse(benchmark, kernel, print_header):
    """One Table III row per kernel: DSE speedup and selected parameters."""

    def run():
        return run_kernel_dse(kernel, PROBLEM_SIZE, num_samples=12, max_iterations=20)

    module, baseline, result = benchmark.pedantic(run, rounds=1, iterations=1)
    best = result.best
    speedup = baseline.latency / best.qor.latency

    print_header(f"Table III — {kernel.upper()} (problem size {PROBLEM_SIZE}, XC7Z020)")
    widths = (22, 18, 18)
    print(format_row(("metric", "paper", "measured"), widths))
    print(format_row(("speedup", f"{PAPER_TABLE3_SPEEDUP[kernel]:.1f}x", f"{speedup:.1f}x"),
                     widths))
    print(format_row(("pipeline II", "-", best.achieved_ii), widths))
    print(format_row(("DSPs", "<= 220", best.qor.dsp), widths))
    print(format_row(("evaluated points", "-", result.num_evaluations), widths))
    print(f"selected parameters : {best.point.describe()}")
    print(f"partition factors   : {best.partition_factors}")

    # The DSE must find a real improvement and respect the platform budget.
    assert speedup > 5.0
    assert best.qor.dsp <= 220
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["paper_speedup"] = PAPER_TABLE3_SPEEDUP[kernel]
    benchmark.extra_info["dsp"] = best.qor.dsp
    benchmark.extra_info["achieved_ii"] = best.achieved_ii

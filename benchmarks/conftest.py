"""Shared helpers and paper reference numbers for the benchmark harness.

Every benchmark prints a "paper vs. measured" table.  Absolute cycle counts
come from our analytical estimator rather than Vivado HLS, so the comparison
is about the *shape* of the results (who wins, by roughly what factor), not
about matching absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.dse import DesignSpaceExplorer
from repro.dse.apply import estimate_baseline
from repro.estimation import XC7Z020
from repro.pipeline import compile_kernel

# Re-exported for test modules: ``from conftest import ...`` resolves to
# whichever conftest.py pytest put on sys.path first, which is this file when
# the benchmarks directory is collected before tests/.
from repro.testing import (  # noqa: F401
    GEMM_SOURCE,
    SYRK_SOURCE,
    compile_source,
    random_array,
    reference_gemm,
    reference_syrk,
)

#: Paper Table III: DSE speedups on the six PolyBench kernels (problem size 4096).
PAPER_TABLE3_SPEEDUP = {
    "bicg": 41.7,
    "gemm": 768.1,
    "gesummv": 199.1,
    "syr2k": 384.0,
    "syrk": 384.1,
    "trmm": 590.9,
}

#: Paper Table IV: the GEMM case study (cycles, speedup, DSPs).
PAPER_TABLE4 = {
    "Unoptimized": (1.237e12, 1.0, 5),
    "DSE Optimized": (1.610e9, 768.1, 217),
    "Manually Optimized": (2.684e9, 460.9, 220),
    "Theoretical Bound": (1.562e9, 791.9, 220),
}

#: Paper Table V: DNN optimization results on one VU9P SLR.
PAPER_TABLE5 = {
    "resnet18": {"speedup": 3825.0, "runtime_s": 60.8, "memory_mb": 91.7,
                 "dsp": 1326, "lut": 157902, "dsp_eff": 1.343, "vta_dsp_eff": 0.344},
    "vgg16": {"speedup": 1505.3, "runtime_s": 37.3, "memory_mb": 46.7,
              "dsp": 878, "lut": 88108, "dsp_eff": 0.744, "vta_dsp_eff": 0.296},
    "mobilenet": {"speedup": 1509.0, "runtime_s": 38.1, "memory_mb": 79.4,
                  "dsp": 1774, "lut": 138060, "dsp_eff": 0.791, "vta_dsp_eff": 0.468},
}

#: Paper Fig. 8: average speedup contributions of each optimization level.
PAPER_FIG8_AVERAGE = {"directive": 1.8, "loop_l7": 130.9, "graph_g7": 10.3}


def run_kernel_dse(name: str, problem_size: int, num_samples: int = 12,
                   max_iterations: int = 20, seed: int = 2022):
    """Compile a kernel, estimate its baseline, and run the DSE engine."""
    module = compile_kernel(name, problem_size)
    baseline = estimate_baseline(module, XC7Z020)
    explorer = DesignSpaceExplorer(XC7Z020, num_samples=num_samples,
                                   max_iterations=max_iterations, seed=seed)
    result = explorer.explore(module)
    return module, baseline, result


def format_row(columns, widths):
    return "  ".join(str(col).rjust(width) for col, width in zip(columns, widths))


@pytest.fixture(scope="session")
def print_header():
    def _print(title: str) -> None:
        print()
        print("=" * 100)
        print(title)
        print("=" * 100)
    return _print

"""Figure 6: design space profiling of a GEMM kernel.

The paper profiles the GEMM design space in two views: (a) the latency-DSP
plane with the Pareto points highlighted and (b) a PCA projection of the
multi-dimensional design space showing that Pareto points cluster.  The
benchmark samples the space, evaluates every point with the QoR estimator,
prints both series, and checks the clustering property quantitatively (the
spread of Pareto points in PCA space is smaller than the spread of the whole
sample).
"""

import random

import numpy as np

from conftest import format_row
from repro.dse import KernelDesignSpace, apply_design_point, pareto_frontier
from repro.dse.pareto import ParetoPoint
from repro.estimation import XC7Z020
from repro.pipeline import compile_kernel

PROBLEM_SIZE = 4096
NUM_SAMPLES = 48


def profile_design_space():
    module = compile_kernel("gemm", PROBLEM_SIZE)
    space = KernelDesignSpace.from_function(module.functions()[0])
    rng = random.Random(42)

    sampled = set()
    while len(sampled) < NUM_SAMPLES:
        sampled.add(space.random_point(rng))

    evaluations = []
    for encoded in sorted(sampled):
        design = apply_design_point(module, space.decode(encoded), XC7Z020)
        vector = space.encode_vector(encoded)
        evaluations.append((encoded, design, vector))
    return space, evaluations


def test_fig6_design_space_profiling(benchmark, print_header):
    space, evaluations = benchmark.pedantic(profile_design_space, rounds=1, iterations=1)

    points = [ParetoPoint(latency=float(design.qor.latency), area=float(design.qor.dsp),
                          encoded=encoded)
              for encoded, design, _ in evaluations]
    frontier = {point.encoded for point in pareto_frontier(points)}

    # PCA of the design-point feature vectors (Fig. 6(b)).
    features = np.array([vector for _, _, vector in evaluations], dtype=float)
    centered = features - features.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    projected = centered @ vt[:2].T

    print_header(f"Figure 6 — GEMM design space profiling ({NUM_SAMPLES} sampled points)")
    widths = (16, 10, 9, 11, 11, 8)
    print(format_row(("latency", "DSP", "pareto", "PC0", "PC1", "II"), widths))
    for (encoded, design, _), coords in zip(evaluations, projected):
        print(format_row((f"{design.qor.latency:.3e}", design.qor.dsp,
                          "yes" if encoded in frontier else "no",
                          f"{coords[0]:.2f}", f"{coords[1]:.2f}",
                          design.achieved_ii or "-"), widths))

    pareto_coordinates = np.array([
        coords for (encoded, _, _), coords in zip(evaluations, projected)
        if encoded in frontier])
    all_spread = projected.std(axis=0).mean()
    pareto_spread = pareto_coordinates.std(axis=0).mean() if len(pareto_coordinates) > 1 else 0.0
    print(f"\nPareto points: {len(frontier)} / {len(evaluations)}")
    print(f"PCA spread — all points: {all_spread:.3f}, Pareto points: {pareto_spread:.3f}")

    # Shape checks: a non-trivial frontier exists and Pareto points cluster
    # (their PCA spread does not exceed the overall spread).
    assert 2 <= len(frontier) < len(evaluations)
    assert pareto_spread <= all_spread * 1.05

    benchmark.extra_info["num_pareto"] = len(frontier)
    benchmark.extra_info["pca_spread_ratio"] = round(
        float(pareto_spread / all_spread) if all_spread else 0.0, 3)

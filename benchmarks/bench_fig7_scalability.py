"""Figure 7: scalability study of the computation kernels.

The paper scales the problem size of the six kernels from 32 to 4096 and runs
the DSE under each setting, showing that the achieved speedup stays stable
for the large kernels (and shrinks for the small problem sizes where the
design space is too small to use the full device).  The benchmark sweeps a
representative subset of the sizes and prints one speedup series per kernel.
"""

import pytest

from conftest import format_row, run_kernel_dse
from repro.kernels import KERNEL_NAMES

PROBLEM_SIZES = (32, 256, 4096)


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_fig7_scalability(benchmark, kernel, print_header):
    def run():
        series = {}
        for problem_size in PROBLEM_SIZES:
            _, baseline, result = run_kernel_dse(kernel, problem_size,
                                                 num_samples=8, max_iterations=10)
            best = result.best
            series[problem_size] = (baseline.latency / best.qor.latency, best.qor.dsp)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(f"Figure 7 — scalability of {kernel.upper()} (DSE speedup vs. problem size)")
    widths = (14, 16, 10)
    print(format_row(("problem size", "speedup", "DSP"), widths))
    for problem_size, (speedup, dsp) in series.items():
        print(format_row((problem_size, f"{speedup:.1f}x", dsp), widths))

    # Shape check: every size is improved, and the large sizes benefit at
    # least as much as the smallest one (the paper's observation that small
    # design spaces cap the achievable speedup).
    assert all(speedup > 2.0 for speedup, _ in series.values())
    assert series[PROBLEM_SIZES[-1]][0] >= series[PROBLEM_SIZES[0]][0] * 0.5

    benchmark.extra_info["speedups"] = {size: round(speedup, 1)
                                        for size, (speedup, _) in series.items()}

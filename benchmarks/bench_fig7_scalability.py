"""Figure 7: scalability study of the computation kernels.

The paper scales the problem size of the six kernels from 32 to 4096 and runs
the DSE under each setting, showing that the achieved speedup stays stable
for the large kernels (and shrinks for the small problem sizes where the
design space is too small to use the full device).  The benchmark sweeps a
representative subset of the sizes and prints one speedup series per kernel.

This file is also a standalone runtime-scalability harness::

    python benchmarks/bench_fig7_scalability.py --jobs 2 --smoke

measures one kernel's DSE wall-clock three ways — serial, parallel over
``--jobs`` workers, and a repeated run against a warm QoR estimate cache —
and reports the parallel and warm-cache speedups plus the cache hit rate.
The parallel speedup depends on the machine's core count; the warm-cache
speedup and the ≥ 90% repeat hit rate are machine-independent properties of
the runtime.
"""

import argparse
import time

import pytest

from conftest import format_row, run_kernel_dse
from repro.dse.runtime import EstimateCache, ParallelExplorer
from repro.estimation import XC7Z020
from repro.kernels import KERNEL_NAMES
from repro.pipeline import compile_kernel

PROBLEM_SIZES = (32, 256, 4096)


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_fig7_scalability(benchmark, kernel, print_header):
    def run():
        series = {}
        for problem_size in PROBLEM_SIZES:
            _, baseline, result = run_kernel_dse(kernel, problem_size,
                                                 num_samples=8, max_iterations=10)
            best = result.best
            series[problem_size] = (baseline.latency / best.qor.latency, best.qor.dsp)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(f"Figure 7 — scalability of {kernel.upper()} (DSE speedup vs. problem size)")
    widths = (14, 16, 10)
    print(format_row(("problem size", "speedup", "DSP"), widths))
    for problem_size, (speedup, dsp) in series.items():
        print(format_row((problem_size, f"{speedup:.1f}x", dsp), widths))

    # Shape check: every size is improved, and the large sizes benefit at
    # least as much as the smallest one (the paper's observation that small
    # design spaces cap the achievable speedup).
    assert all(speedup > 2.0 for speedup, _ in series.values())
    assert series[PROBLEM_SIZES[-1]][0] >= series[PROBLEM_SIZES[0]][0] * 0.5

    benchmark.extra_info["speedups"] = {size: round(speedup, 1)
                                        for size, (speedup, _) in series.items()}


# -- parallel runtime scalability ---------------------------------------------------------------


def measure_runtime_scalability(kernel: str, problem_size: int, jobs: int,
                                num_samples: int, max_iterations: int,
                                batch_size: int = 8, seed: int = 2022) -> dict:
    """Time one kernel's DSE serial vs. parallel vs. warm-cache.

    All three runs share seed and batch size, so they follow the identical
    exploration trajectory — the comparison isolates pure execution cost.
    """
    module = compile_kernel(kernel, problem_size)

    def run(jobs_now, cache):
        explorer = ParallelExplorer(XC7Z020, num_samples=num_samples,
                                    max_iterations=max_iterations, seed=seed,
                                    jobs=jobs_now, batch_size=batch_size,
                                    cache=cache)
        started = time.perf_counter()
        result = explorer.explore(module)
        return result, time.perf_counter() - started

    serial_result, serial_seconds = run(1, None)

    cache = EstimateCache()
    parallel_result, parallel_seconds = run(jobs, cache)
    warm_result, warm_seconds = run(jobs, cache)

    lookups = warm_result.cache_hits + warm_result.cache_misses
    return {
        "kernel": kernel,
        "problem_size": problem_size,
        "jobs": jobs,
        "num_evaluations": serial_result.num_evaluations,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "warm_seconds": warm_seconds,
        "parallel_speedup": serial_seconds / max(parallel_seconds, 1e-9),
        "warm_speedup": serial_seconds / max(warm_seconds, 1e-9),
        "warm_hit_rate": warm_result.cache_hits / max(lookups, 1),
        "identical_frontier": (
            [(p.encoded, p.latency, p.area) for p in serial_result.frontier]
            == [(p.encoded, p.latency, p.area) for p in parallel_result.frontier]
            == [(p.encoded, p.latency, p.area) for p in warm_result.frontier]),
    }


def print_runtime_report(measurement: dict) -> None:
    print("=" * 78)
    print(f"Parallel DSE runtime — {measurement['kernel']} "
          f"(size {measurement['problem_size']}, "
          f"{measurement['num_evaluations']} evaluations)")
    print("=" * 78)
    widths = (30, 14, 12)
    print(format_row(("configuration", "wall clock", "speedup"), widths))
    print(format_row(("serial (--jobs 1)",
                      f"{measurement['serial_seconds']:.2f}s", "1.0x"), widths))
    print(format_row((f"parallel (--jobs {measurement['jobs']})",
                      f"{measurement['parallel_seconds']:.2f}s",
                      f"{measurement['parallel_speedup']:.1f}x"), widths))
    print(format_row(("repeat with warm cache",
                      f"{measurement['warm_seconds']:.2f}s",
                      f"{measurement['warm_speedup']:.1f}x"), widths))
    print(f"warm-run cache hit rate: {measurement['warm_hit_rate'] * 100:.1f}%")
    print(f"frontier identical across all runs: "
          f"{measurement['identical_frontier']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="runtime scalability smoke of the parallel DSE")
    parser.add_argument("--kernel", default="gemm", choices=sorted(KERNEL_NAMES))
    parser.add_argument("--size", type=int, default=32)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--samples", type=int, default=8)
    parser.add_argument("--iterations", type=int, default=16)
    parser.add_argument("--smoke", action="store_true",
                        help="small budgets suitable for a ~30 second CI check")
    args = parser.parse_args(argv)

    if args.smoke:
        args.samples = min(args.samples, 6)
        args.iterations = min(args.iterations, 8)

    measurement = measure_runtime_scalability(
        args.kernel, args.size, args.jobs, args.samples, args.iterations)
    print_runtime_report(measurement)

    # Machine-independent runtime guarantees.
    assert measurement["identical_frontier"], \
        "parallel/warm runs diverged from the serial frontier"
    assert measurement["warm_hit_rate"] >= 0.9, \
        f"warm hit rate {measurement['warm_hit_rate']:.2f} below 90%"
    assert measurement["warm_speedup"] >= 2.0, \
        f"warm-cache speedup {measurement['warm_speedup']:.1f}x below 2x"
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())

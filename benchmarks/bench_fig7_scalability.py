"""Figure 7: scalability study of the computation kernels.

The paper scales the problem size of the six kernels from 32 to 4096 and runs
the DSE under each setting, showing that the achieved speedup stays stable
for the large kernels (and shrinks for the small problem sizes where the
design space is too small to use the full device).  The benchmark sweeps a
representative subset of the sizes and prints one speedup series per kernel.

This file is also a standalone runtime-scalability harness::

    python benchmarks/bench_fig7_scalability.py --jobs 2 --smoke

measures one kernel's DSE wall-clock three ways — serial, parallel over
``--jobs`` workers, and a repeated run against a warm QoR estimate cache —
and reports the parallel and warm-cache speedups plus the cache hit rate.
The parallel speedup depends on the machine's core count; the warm-cache
speedup and the ≥ 90% repeat hit rate are machine-independent properties of
the runtime.

A third mode::

    python benchmarks/bench_fig7_scalability.py --pass-timing

reports per-pass wall-clock for one DSE evaluation under the legacy
full-module fixpoint sweep driver versus the worklist rewrite driver, the
A/B behind the worklist driver's hot-path claim (both drivers produce
identical IR; only the revisit strategy differs).
"""

import argparse
import time

import pytest

from conftest import format_row, run_kernel_dse
from repro.dse.runtime import EstimateCache, ParallelExplorer
from repro.estimation import XC7Z020
from repro.kernels import KERNEL_NAMES
from repro.pipeline import compile_kernel

PROBLEM_SIZES = (32, 256, 4096)


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_fig7_scalability(benchmark, kernel, print_header):
    def run():
        series = {}
        for problem_size in PROBLEM_SIZES:
            _, baseline, result = run_kernel_dse(kernel, problem_size,
                                                 num_samples=8, max_iterations=10)
            best = result.best
            series[problem_size] = (baseline.latency / best.qor.latency, best.qor.dsp)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(f"Figure 7 — scalability of {kernel.upper()} (DSE speedup vs. problem size)")
    widths = (14, 16, 10)
    print(format_row(("problem size", "speedup", "DSP"), widths))
    for problem_size, (speedup, dsp) in series.items():
        print(format_row((problem_size, f"{speedup:.1f}x", dsp), widths))

    # Shape check: every size is improved, and the large sizes benefit at
    # least as much as the smallest one (the paper's observation that small
    # design spaces cap the achievable speedup).
    assert all(speedup > 2.0 for speedup, _ in series.values())
    assert series[PROBLEM_SIZES[-1]][0] >= series[PROBLEM_SIZES[0]][0] * 0.5

    benchmark.extra_info["speedups"] = {size: round(speedup, 1)
                                        for size, (speedup, _) in series.items()}


# -- parallel runtime scalability ---------------------------------------------------------------


def measure_runtime_scalability(kernel: str, problem_size: int, jobs: int,
                                num_samples: int, max_iterations: int,
                                batch_size: int = 8, seed: int = 2022) -> dict:
    """Time one kernel's DSE serial vs. parallel vs. warm-cache.

    All three runs share seed and batch size, so they follow the identical
    exploration trajectory — the comparison isolates pure execution cost.
    """
    module = compile_kernel(kernel, problem_size)

    def run(jobs_now, cache):
        explorer = ParallelExplorer(XC7Z020, num_samples=num_samples,
                                    max_iterations=max_iterations, seed=seed,
                                    jobs=jobs_now, batch_size=batch_size,
                                    cache=cache)
        started = time.perf_counter()
        result = explorer.explore(module)
        return result, time.perf_counter() - started

    serial_result, serial_seconds = run(1, None)

    cache = EstimateCache()
    parallel_result, parallel_seconds = run(jobs, cache)
    warm_result, warm_seconds = run(jobs, cache)

    lookups = warm_result.cache_hits + warm_result.cache_misses
    return {
        "kernel": kernel,
        "problem_size": problem_size,
        "jobs": jobs,
        "num_evaluations": serial_result.num_evaluations,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "warm_seconds": warm_seconds,
        "parallel_speedup": serial_seconds / max(parallel_seconds, 1e-9),
        "warm_speedup": serial_seconds / max(warm_seconds, 1e-9),
        "warm_hit_rate": warm_result.cache_hits / max(lookups, 1),
        "identical_frontier": (
            [(p.encoded, p.latency, p.area) for p in serial_result.frontier]
            == [(p.encoded, p.latency, p.area) for p in parallel_result.frontier]
            == [(p.encoded, p.latency, p.area) for p in warm_result.frontier]),
    }


def print_runtime_report(measurement: dict) -> None:
    print("=" * 78)
    print(f"Parallel DSE runtime — {measurement['kernel']} "
          f"(size {measurement['problem_size']}, "
          f"{measurement['num_evaluations']} evaluations)")
    print("=" * 78)
    widths = (30, 14, 12)
    print(format_row(("configuration", "wall clock", "speedup"), widths))
    print(format_row(("serial (--jobs 1)",
                      f"{measurement['serial_seconds']:.2f}s", "1.0x"), widths))
    print(format_row((f"parallel (--jobs {measurement['jobs']})",
                      f"{measurement['parallel_seconds']:.2f}s",
                      f"{measurement['parallel_speedup']:.1f}x"), widths))
    print(format_row(("repeat with warm cache",
                      f"{measurement['warm_seconds']:.2f}s",
                      f"{measurement['warm_speedup']:.1f}x"), widths))
    print(f"warm-run cache hit rate: {measurement['warm_hit_rate'] * 100:.1f}%")
    print(f"frontier identical across all runs: "
          f"{measurement['identical_frontier']}")


# -- rewrite-driver pass timing ---------------------------------------------------------------


def measure_pass_timing(kernel: str, problem_size: int,
                        rounds: int = 3, tiles: tuple = (4, 4, 8)) -> dict:
    """Per-pass wall-clock of one DSE evaluation, sweep vs. worklist driver.

    The same design point (a tiled, pipelined configuration that produces
    large unrolled blocks — the canonicalize/CSE hot path) is applied
    ``rounds`` times under each rewrite strategy; accumulated per-pass times
    come from the PassManager instrumentation.  ``tiles`` sets the tile
    sizes of the point; tiles equal to the problem size yield a *fully*
    unrolled kernel, the block-size extreme of the paper's Fig. 7 space.
    """
    from repro.dse.apply import apply_design_point
    from repro.dse.space import KernelDesignPoint
    from repro.ir.pass_manager import collect_pass_timings
    from repro.ir.rewrite import set_rewrite_strategy

    module = compile_kernel(kernel, problem_size)
    point = KernelDesignPoint(True, True, (1, 2, 0), tuple(tiles), 1)

    def run_once(strategy, accumulated):
        previous = set_rewrite_strategy(strategy)
        try:
            with collect_pass_timings() as collector:
                design = apply_design_point(module, point)
        finally:
            set_rewrite_strategy(previous)
        for name, seconds in collector.timings.items():
            accumulated[name] = accumulated.get(name, 0.0) + seconds
        return design.qor

    # One untimed warmup, then strictly alternating rounds so cache/alloc
    # drift cancels out instead of biasing whichever strategy runs first.
    rounds = max(1, int(rounds))
    apply_design_point(module, point)
    sweep_timings: dict = {}
    worklist_timings: dict = {}
    sweep_qor = worklist_qor = None
    for _ in range(rounds):
        sweep_qor = run_once("sweep", sweep_timings)
        worklist_qor = run_once("worklist", worklist_timings)
    if (sweep_qor.latency, sweep_qor.dsp) != (worklist_qor.latency, worklist_qor.dsp):
        raise SystemExit("sweep and worklist drivers diverged: "
                         f"{sweep_qor} vs {worklist_qor}")
    return {
        "kernel": kernel,
        "problem_size": problem_size,
        "rounds": rounds,
        "sweep": sweep_timings,
        "worklist": worklist_timings,
    }


#: The timing buckets the worklist driver actually changes.
_DRIVER_PASSES = ("canonicalize", "simplify-affine-if")


def print_pass_timing_report(measurement: dict) -> None:
    sweep, worklist = measurement["sweep"], measurement["worklist"]
    print("=" * 78)
    print(f"Rewrite driver pass timing — {measurement['kernel']} "
          f"(size {measurement['problem_size']}, "
          f"{measurement['rounds']} evaluations per strategy)")
    print("=" * 78)
    widths = (34, 14, 14, 10)
    print(format_row(("pass", "sweep", "worklist", "speedup"), widths))
    for name in sorted(set(sweep) | set(worklist),
                       key=lambda n: -sweep.get(n, 0.0)):
        s, w = sweep.get(name, 0.0), worklist.get(name, 0.0)
        speedup = f"{s / w:.2f}x" if w > 0 else "-"
        print(format_row((name, f"{s * 1000:.1f} ms", f"{w * 1000:.1f} ms",
                          speedup), widths))
    s_total, w_total = sum(sweep.values()), sum(worklist.values())
    print(format_row(("Total", f"{s_total * 1000:.1f} ms",
                      f"{w_total * 1000:.1f} ms",
                      f"{s_total / max(w_total, 1e-9):.2f}x"), widths))
    s_driver = sum(sweep.get(n, 0.0) for n in _DRIVER_PASSES)
    w_driver = sum(worklist.get(n, 0.0) for n in _DRIVER_PASSES)
    print(f"driver-rewritten passes ({' + '.join(_DRIVER_PASSES)}): "
          f"{s_driver * 1000:.1f} ms -> {w_driver * 1000:.1f} ms "
          f"({s_driver / max(w_driver, 1e-9):.2f}x)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="runtime scalability smoke of the parallel DSE")
    parser.add_argument("--kernel", default="gemm", choices=sorted(KERNEL_NAMES))
    parser.add_argument("--size", type=int, default=32)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--samples", type=int, default=8)
    parser.add_argument("--iterations", type=int, default=16)
    parser.add_argument("--smoke", action="store_true",
                        help="small budgets suitable for a ~30 second CI check")
    parser.add_argument("--pass-timing", action="store_true",
                        help="report per-pass time of one DSE evaluation under "
                             "the sweep vs. worklist rewrite driver")
    parser.add_argument("--rounds", type=int, default=3,
                        help="evaluations per strategy in --pass-timing mode")
    parser.add_argument("--tiles", default="4,4,8",
                        help="tile sizes of the --pass-timing design point; "
                             "tiles equal to --size fully unroll the kernel "
                             "(e.g. --size 16 --tiles 16,16,16)")
    args = parser.parse_args(argv)

    if args.pass_timing:
        tiles = tuple(int(v) for v in args.tiles.split(","))
        measurement = measure_pass_timing(args.kernel, args.size,
                                          rounds=args.rounds, tiles=tiles)
        print_pass_timing_report(measurement)
        sweep = sum(measurement["sweep"].get(n, 0.0) for n in _DRIVER_PASSES)
        worklist = sum(measurement["worklist"].get(n, 0.0)
                       for n in _DRIVER_PASSES)
        # Explicit checks (not assert): they must gate even under -O.  A
        # 10% tolerance absorbs scheduler noise on loaded machines — the
        # gate catches regressions, not jitter around parity.
        if worklist > sweep * 1.10:
            raise SystemExit(
                f"worklist driver ({worklist * 1000:.1f} ms) clearly slower "
                f"than the fixpoint sweeps ({sweep * 1000:.1f} ms) on the "
                f"cleanup passes")
        if worklist >= sweep:
            print(f"warning: worklist ({worklist * 1000:.1f} ms) did not beat "
                  f"the sweeps ({sweep * 1000:.1f} ms) this run — within the "
                  f"10% noise tolerance; rerun with more --rounds")
        return 0

    if args.smoke:
        args.samples = min(args.samples, 6)
        args.iterations = min(args.iterations, 8)

    measurement = measure_runtime_scalability(
        args.kernel, args.size, args.jobs, args.samples, args.iterations)
    print_runtime_report(measurement)

    # Machine-independent runtime guarantees.
    assert measurement["identical_frontier"], \
        "parallel/warm runs diverged from the serial frontier"
    assert measurement["warm_hit_rate"] >= 0.9, \
        f"warm hit rate {measurement['warm_hit_rate']:.2f} below 90%"
    assert measurement["warm_speedup"] >= 2.0, \
        f"warm-cache speedup {measurement['warm_speedup']:.1f}x below 2x"
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())

"""Micro-benchmark of the IR hot paths the intrusive op list optimizes.

The DSE evaluates thousands of design points, and unroll-heavy points
produce blocks with thousands of straight-line operations; every block
mutation and ordering query inside that loop is a hot path.  This benchmark
measures the scaling of those primitives on the intrusive doubly-linked
Block representation:

* ``append``        — N appends building a block,
* ``mid_insert``    — N ``insert_before`` at a fixed mid-block anchor,
* ``mid_remove``    — N ``remove`` calls at the middle of the block,
* ``splice``        — one ``insert_all_after`` of N ops,
* ``ordering``      — N ``is_before_in_block`` queries on random pairs,
* ``move``          — N ``move_before``/``move_after`` hops,
* ``defined_above`` — N ``is_defined_above`` visibility queries from nested
  blocks scattered through one large block (order-key dominance walk,
  O(depth) per query regardless of the enclosing block's size),
* ``verify_nested`` — one ``verify()`` of a region-heavy block (N ops, a
  nested single-op block every 8 ops): per-operand order-key dominance;
  the seed's availability-set verifier copied the visible set once per
  nested block, i.e. quadratic on exactly this shape,

* ``rewrite_storm``  — one worklist-driver canonicalize of an N-op constant
  chain (every op folds, then everything is DCE'd): the constant-folding
  storm the order-keyed deduplicating worklist keeps linear — each op is
  visited O(1) times, pinned via the driver's ``visit_counts``,
* ``pattern_dispatch`` — one worklist-driver run over N ops spread across
  64 distinct op names against a 64-bucket pattern set: per-op dispatch is
  one dict lookup, independent of the pattern count,

and, as the asymptotic baseline, ``list_mid_insert`` — the same mid-block
insertion against a plain Python list (the seed representation): O(n) per
insert, visibly quadratic at these sizes.

Usage::

    python benchmarks/bench_ir_hotpaths.py                # full curve
    python benchmarks/bench_ir_hotpaths.py --smoke        # CI gate (~seconds)
    python benchmarks/bench_ir_hotpaths.py --json out.json
    python benchmarks/bench_ir_hotpaths.py --gemm-dse 8 12 16  # end-to-end

``--smoke`` exits non-zero when any linked-list scenario scales worse than
near-linear (per-op cost growing more than ``--max-growth`` across an 8x
size sweep — a quadratic regression would grow ~8x).  ``--gemm-dse`` also
times one full DSE evaluation of a *fully unrolled* gemm per listed size
(clone + transform pipeline + QoR estimate, the paper's Fig. 7 block-size
extreme) and records the wall-clock under ``"gemm_dse_seconds"`` in the
``--json`` payload — the before/after ledger of the constant-factor work.
``--prefix-reuse`` (implied by ``--smoke``) A/Bs incremental evaluation —
a fixed sweep of suffix-varying design points evaluated from scratch vs
through a prefix-snapshot cache — and the smoke gate fails when the cache
never hits or stops paying for itself (``--min-prefix-speedup``).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.ir.block import Block
from repro.ir.operation import Operation

FULL_SIZES = (1000, 2000, 4000, 8000, 16000)
SMOKE_SIZES = (500, 1000, 2000, 4000)


def _ops(count: int) -> list[Operation]:
    return [Operation("bench.op") for _ in range(count)]


def _filled_block(count: int) -> Block:
    block = Block()
    for op in _ops(count):
        block.append(op)
    return block


# -- scenarios (each returns elapsed seconds for `size` primitive calls) ------------------


def scenario_append(size: int) -> float:
    ops = _ops(size)
    block = Block()
    started = time.perf_counter()
    for op in ops:
        block.append(op)
    return time.perf_counter() - started


def scenario_mid_insert(size: int) -> float:
    block = _filled_block(size)
    anchor = block.operations[size // 2]
    ops = _ops(size)
    started = time.perf_counter()
    for op in ops:
        block.insert_before(anchor, op)
    return time.perf_counter() - started


def scenario_mid_remove(size: int) -> float:
    block = _filled_block(2 * size)
    # Collect the middle ops first so the timed loop is pure `remove`.
    middle = list(block.operations)[size // 2: size // 2 + size]
    started = time.perf_counter()
    for op in middle:
        block.remove(op)
    return time.perf_counter() - started


def scenario_splice(size: int) -> float:
    block = _filled_block(size)
    anchor = block.operations[size // 2]
    ops = _ops(size)
    started = time.perf_counter()
    block.insert_all_after(anchor, ops)
    return time.perf_counter() - started


def scenario_ordering(size: int) -> float:
    block = _filled_block(size)
    ops = list(block.operations)
    rng = random.Random(2022)
    pairs = [(ops[rng.randrange(size)], ops[rng.randrange(size)])
             for _ in range(size)]
    started = time.perf_counter()
    for a, b in pairs:
        a.is_before_in_block(b)
    return time.perf_counter() - started


def scenario_move(size: int) -> float:
    block = _filled_block(size)
    ops = list(block.operations)
    first, last = ops[0], ops[-1]
    rng = random.Random(7)
    movers = [ops[rng.randrange(1, size - 1)] for _ in range(size)]
    started = time.perf_counter()
    for i, op in enumerate(movers):
        if i % 2:
            op.move_before(last)
        else:
            op.move_after(first)
    return time.perf_counter() - started


def _nested_block_module(size: int, nest_every: int = 8):
    """One big block of chained ops; every ``nest_every``-th op carries a
    region whose block uses a value from the enclosing block."""
    from repro.ir.value import Value

    root = Operation("bench.root", num_regions=1)
    block = root.regions[0].add_block(Block())
    previous: Value = None
    inner_blocks = []
    for index in range(size):
        operands = (previous,) if previous is not None else ()
        if index % nest_every == nest_every - 1:
            op = Operation("bench.wrap", operands=operands,
                           result_types=(None,), num_regions=1)
            inner = op.regions[0].add_block(Block())
            inner.append(Operation("bench.use", operands=operands))
            inner_blocks.append(inner)
        else:
            op = Operation("bench.op", operands=operands, result_types=(None,))
        block.append(op)
        previous = op.results[0]
    return root, block, inner_blocks


def scenario_defined_above(size: int) -> float:
    from repro.ir.traversal import is_defined_above

    _, block, inner_blocks = _nested_block_module(size)
    anchors = list(block.operations)
    rng = random.Random(11)
    queries = [(anchors[rng.randrange(size)].results[0],
                inner_blocks[rng.randrange(len(inner_blocks))])
               for _ in range(size)]
    started = time.perf_counter()
    for value, inner in queries:
        is_defined_above(value, inner)
    return time.perf_counter() - started


def scenario_verify_nested(size: int) -> float:
    from repro.ir.verifier import verify

    root, _, _ = _nested_block_module(size)
    started = time.perf_counter()
    verify(root, require_terminators=False)
    return time.perf_counter() - started


def scenario_rewrite_storm(size: int) -> float:
    """Worklist canonicalize of a fully foldable N-op constant chain.

    Every op folds to a constant and the whole chain is dead — the revisit
    storm that made the pre-bucketed driver superlinear.  The deduplicating
    program-ordered worklist visits each op a bounded number of times, so
    per-op cost stays flat; the gate fails on a revisit-storm regression.
    """
    from repro.dialects import arith
    from repro.ir.rewrite import GreedyRewriteDriver
    from repro.ir.types import index
    from repro.transforms.cleanup.canonicalize import canonicalization_patterns

    root = Operation("bench.root", num_regions=1)
    block = root.regions[0].add_block(Block())
    one = arith.ConstantOp(1, index)
    block.append(one)
    previous = one.result()
    for _ in range(size):
        op = arith.AddIOp(previous, one.result())
        block.append(op)
        previous = op.result()
    driver = GreedyRewriteDriver(canonicalization_patterns(),
                                 max_iterations=64, strategy="worklist")
    started = time.perf_counter()
    driver.rewrite(root)
    return time.perf_counter() - started


def scenario_pattern_dispatch(size: int) -> float:
    """One worklist run over N ops of 64 distinct names vs. 64+2 patterns.

    Bucketed dispatch makes matching an op a single dict lookup; per-op
    cost must not grow with the block (nor, implicitly, the pattern count).
    """
    from repro.ir.rewrite import GreedyRewriteDriver, RewritePattern

    num_names = 64

    class Never(RewritePattern):
        def __init__(self, op_name):
            self.op_name = op_name

        def match_and_rewrite(self, op, rewriter) -> bool:
            return False

    patterns = [Never(f"bench.op{i}") for i in range(num_names)]
    patterns += [Never(None), Never(None)]  # wildcards merged into every bucket
    root = Operation("bench.root", num_regions=1)
    block = root.regions[0].add_block(Block())
    for i in range(size):
        block.append(Operation(f"bench.op{i % num_names}"))
    driver = GreedyRewriteDriver(patterns, strategy="worklist")
    started = time.perf_counter()
    driver.rewrite(root)
    return time.perf_counter() - started


def scenario_list_mid_insert(size: int) -> float:
    """The seed representation's mid-block insert: a plain list splice."""
    data = list(range(size))
    started = time.perf_counter()
    for i in range(size):
        data.insert(size // 2, i)
    return time.perf_counter() - started


def measure_prefix_reuse(size: int = 8, repeats: int = 3) -> dict:
    """A/B of incremental evaluation: one prefix, many suffix-varying points.

    Evaluates a fixed sweep of design points that all share the
    ``perfectize=True, rvb=True`` prefix — first from scratch (the
    ``--no-incremental`` path), then through a :class:`PrefixSnapshotCache`
    (one prefix build, then checkout clones), with the precomputed IR-digest
    hint the DSE runtime ships in its kernel contexts.  The sweep leans on
    *light* suffixes (small tiles), where the shared prefix is a meaningful
    share of each evaluation — exactly the points a frontier-evolution sweep
    evaluates by the hundreds.  Best-of-``repeats`` wall-clock per mode; the
    smoke gate fails when the cache stops paying for itself or stops
    hitting.
    """
    from repro.dse.apply import apply_design_point
    from repro.dse.incremental import PrefixSnapshotCache
    from repro.dse.space import KernelDesignPoint, ir_digest
    from repro.pipeline import compile_kernel

    module = compile_kernel("gemm", size)
    digest = ir_digest(module.functions()[0])
    points = [KernelDesignPoint(True, True, perm, tiles, ii)
              for perm in ((0, 1, 2), (1, 2, 0), (2, 0, 1))
              for tiles in ((1, 1, 1), (2, 1, 1))
              for ii in (1, 2, 4)]

    def from_scratch():
        for point in points:
            apply_design_point(module, point)

    hits = misses = 0

    def incremental_run():
        nonlocal hits, misses
        snapshots = PrefixSnapshotCache()
        for point in points:
            apply_design_point(module, point, snapshots=snapshots,
                               digest=digest)
        hits, misses = snapshots.hits, snapshots.misses

    # Interleave the two modes and keep the best of each: on a noisy box,
    # back-to-back pairs see the same machine state, so drift hits both
    # sides instead of skewing the ratio.
    baseline = incremental = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        from_scratch()
        baseline = min(baseline, time.perf_counter() - started)
        started = time.perf_counter()
        incremental_run()
        incremental = min(incremental, time.perf_counter() - started)
    speedup = baseline / incremental if incremental > 0 else float("inf")
    print(f"prefix_reuse: {len(points)} gemm-{size} evaluations, "
          f"from-scratch {baseline * 1000:.1f}ms vs incremental "
          f"{incremental * 1000:.1f}ms ({speedup:.2f}x; {hits} snapshot "
          f"hits, {misses} misses)")
    return {"points": len(points), "baseline_seconds": baseline,
            "incremental_seconds": incremental, "speedup": speedup,
            "hits": hits, "misses": misses}


def measure_gemm_dse(sizes) -> dict:
    """Wall-clock of one fully-unrolled gemm DSE evaluation per size."""
    from repro.dse.apply import apply_design_point
    from repro.dse.space import KernelDesignPoint
    from repro.pipeline import compile_kernel

    seconds = {}
    for size in sizes:
        module = compile_kernel("gemm", size)
        point = KernelDesignPoint(True, True, (1, 2, 0), (size,) * 3, 1)
        started = time.perf_counter()
        design = apply_design_point(module, point)
        seconds[size] = time.perf_counter() - started
        print(f"gemm {size}^3 full-unroll evaluation: {seconds[size]:.2f}s "
              f"(latency={design.qor.latency}, dsp={design.qor.dsp})")
    return seconds


SCENARIOS = {
    "append": scenario_append,
    "mid_insert": scenario_mid_insert,
    "mid_remove": scenario_mid_remove,
    "splice": scenario_splice,
    "ordering": scenario_ordering,
    "move": scenario_move,
    "defined_above": scenario_defined_above,
    "verify_nested": scenario_verify_nested,
    "rewrite_storm": scenario_rewrite_storm,
    "pattern_dispatch": scenario_pattern_dispatch,
    "list_mid_insert": scenario_list_mid_insert,
}

#: Scenarios gated on near-linear scaling (the baseline is *expected* to be
#: quadratic, so it is excluded).
GATED = ("append", "mid_insert", "mid_remove", "splice", "ordering", "move",
         "defined_above", "verify_nested", "rewrite_storm", "pattern_dispatch")


def measure(sizes, repeats: int = 3) -> dict:
    """Best-of-``repeats`` seconds for every (scenario, size) pair."""
    results = {name: {} for name in SCENARIOS}
    for name, scenario in SCENARIOS.items():
        for size in sizes:
            best = min(scenario(size) for _ in range(repeats))
            results[name][size] = best
    return results


def per_op_ns(results: dict, name: str, size: int) -> float:
    return results[name][size] / size * 1e9


def growth_factor(results: dict, name: str, sizes) -> float:
    """Per-op cost growth from the smallest to the largest size."""
    lo, hi = sizes[0], sizes[-1]
    base = per_op_ns(results, name, lo)
    return per_op_ns(results, name, hi) / max(base, 1e-9)


def print_report(results: dict, sizes) -> None:
    header = f"{'scenario':<18}" + "".join(f"{size:>12}" for size in sizes) \
        + f"{'growth':>9}"
    print("=" * len(header))
    print("IR hot-path scaling (per-op ns; growth = per-op cost largest/smallest)")
    print("=" * len(header))
    print(header)
    for name in SCENARIOS:
        row = f"{name:<18}"
        for size in sizes:
            row += f"{per_op_ns(results, name, size):>12.0f}"
        row += f"{growth_factor(results, name, sizes):>8.1f}x"
        print(row)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="scaling micro-benchmark of the intrusive Block op list")
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes + regression gate for CI")
    parser.add_argument("--sizes", type=int, nargs="+",
                        help="override the benchmark sizes")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats per measurement (best-of)")
    parser.add_argument("--max-growth", type=float, default=5.0,
                        help="per-op cost growth allowed across the size "
                             "sweep before the smoke gate fails (linear ~1x, "
                             "quadratic ~= the size ratio)")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the raw measurements as JSON")
    parser.add_argument("--gemm-dse", type=int, nargs="+", metavar="SIZE",
                        help="also time one fully-unrolled gemm DSE "
                             "evaluation per problem size (recorded under "
                             "'gemm_dse_seconds' in the --json payload)")
    parser.add_argument("--prefix-reuse", action="store_true",
                        help="also A/B incremental evaluation (prefix-snapshot "
                             "caching vs from-scratch) over a fixed gemm "
                             "sweep; implied by --smoke, where it gates on "
                             "--min-prefix-speedup")
    parser.add_argument("--min-prefix-speedup", type=float, default=1.05,
                        help="smoke gate: minimum from-scratch/incremental "
                             "wall-clock ratio of the prefix_reuse sweep "
                             "(default 1.05; the cache must at least pay "
                             "for itself)")
    args = parser.parse_args(argv)

    sizes = tuple(args.sizes) if args.sizes \
        else (SMOKE_SIZES if args.smoke else FULL_SIZES)
    results = measure(sizes, repeats=args.repeats)
    print_report(results, sizes)
    gemm_dse = measure_gemm_dse(args.gemm_dse) if args.gemm_dse else None
    prefix_reuse = measure_prefix_reuse() \
        if args.prefix_reuse or args.smoke else None

    if args.json:
        payload = {
            "sizes": list(sizes),
            "seconds": {name: {str(size): results[name][size] for size in sizes}
                        for name in SCENARIOS},
            "per_op_ns": {name: {str(size): per_op_ns(results, name, size)
                                 for size in sizes} for name in SCENARIOS},
            "growth": {name: growth_factor(results, name, sizes)
                       for name in SCENARIOS},
        }
        if gemm_dse is not None:
            payload["gemm_dse_seconds"] = {str(size): seconds
                                           for size, seconds in gemm_dse.items()}
        if prefix_reuse is not None:
            payload["prefix_reuse"] = prefix_reuse
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    if args.smoke:
        # Self-calibrate against the quadratic plain-list baseline measured
        # on the same machine: on a noisy CI runner both inflate together,
        # so the relative bound keeps the gate from flaking while still
        # catching a primitive that regressed to baseline-like scaling.
        baseline_growth = growth_factor(results, "list_mid_insert", sizes)
        limit = max(args.max_growth, 0.6 * baseline_growth)
        failures = []
        for name in GATED:
            growth = growth_factor(results, name, sizes)
            if growth > limit:
                failures.append(f"{name}: per-op cost grew {growth:.1f}x over "
                                f"a {sizes[-1] // sizes[0]}x size sweep "
                                f"(limit {limit:.1f}x; quadratic baseline "
                                f"grew {baseline_growth:.1f}x)")
        if prefix_reuse is not None:
            if prefix_reuse["hits"] == 0:
                failures.append("prefix_reuse: snapshot cache never hit "
                                "(every evaluation rebuilt the prefix)")
            elif prefix_reuse["speedup"] < args.min_prefix_speedup:
                failures.append(
                    f"prefix_reuse: incremental evaluation only "
                    f"{prefix_reuse['speedup']:.2f}x faster than from-scratch "
                    f"(gate {args.min_prefix_speedup:.2f}x)")
        if failures:
            print("hot-path scaling regression:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"smoke gate passed: all gated scenarios scale near-linearly "
              f"(growth <= {limit:.1f}x) and incremental evaluation pays off")
    return 0


if __name__ == "__main__":
    sys.exit(main())

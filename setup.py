"""Setup shim for environments without PEP 517 build isolation."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description="ScaleHLS reproduction: a multi-level HLS compilation framework in Python",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
